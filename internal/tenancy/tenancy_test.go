package tenancy

import (
	"fmt"
	"sync"
	"testing"

	"arckfs/internal/core"
	"arckfs/internal/kernel"
)

func newSys(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{DevSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestIdleTenantFootprint pins the per-idle-tenant heap cost under the
// 8 KiB budget the package documentation promises. The measurement
// includes the spawn crossings (registration, shadow-table growth) —
// the honest cost of an idle tenant, not just its structs.
func TestIdleTenantFootprint(t *testing.T) {
	const budget = 8192.0
	per, err := MeasureIdleFootprint(2048)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("idle tenant footprint: %.0f B/tenant", per)
	if per >= budget {
		t.Fatalf("idle tenant costs %.0f B, budget is %.0f B", per, budget)
	}
}

// TestTenantLifecycle walks one tenant through the full arc — spawn
// with a quota, create/write/read through a lazily-built thread, retire
// — and checks the teardown leaves no residue: the registry forgets the
// tenant, the kernel's usage table drops the app, the attribution
// dimension evicts its row, and the namespace survives for successors.
func TestTenantLifecycle(t *testing.T) {
	sys := newSys(t)
	reg := NewRegistry(sys)

	tn, err := reg.Spawn(kernel.Quota{MaxPages: 1024, MaxInodes: 512, Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := sys.Ctrl.QuotaOf(tn.App()); !ok || got.MaxPages != 1024 || got.Weight != 2 {
		t.Fatalf("quota not installed: %+v ok=%v", got, ok)
	}

	th := tn.Thread(0)
	if err := th.Create("/lifecycle"); err != nil {
		t.Fatal(err)
	}
	fd, err := th.Open("/lifecycle")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("written by tenant one")
	if _, err := th.WriteAt(fd, want, 0); err != nil {
		t.Fatal(err)
	}
	if th2 := tn.Thread(0); th2 != th {
		t.Fatal("Thread(0) did not return the cached worker")
	}

	app := tn.App()
	if err := tn.Retire(); err != nil {
		t.Fatal(err)
	}
	if err := tn.Retire(); err != nil {
		t.Fatalf("second Retire not idempotent: %v", err)
	}
	if tn.Thread(0) != nil {
		t.Fatal("retired tenant handed out a worker")
	}
	if reg.Len() != 0 {
		t.Fatalf("registry still holds %d tenants", reg.Len())
	}
	for _, u := range reg.Usage() {
		if u.App == app {
			t.Fatalf("kernel usage still lists retired app %d: %+v", app, u)
		}
	}
	for _, st := range sys.AppStats() {
		if st.App == int64(app) {
			t.Fatalf("attribution row for retired app %d not evicted", app)
		}
	}

	// The namespace outlives the tenant: a successor reads its file.
	tn2, err := reg.Spawn(kernel.Quota{})
	if err != nil {
		t.Fatal(err)
	}
	th2 := tn2.Thread(0)
	fd2, err := th2.Open("/lifecycle")
	if err != nil {
		t.Fatalf("successor cannot open retired tenant's file: %v", err)
	}
	buf := make([]byte, len(want))
	if _, err := th2.ReadAt(fd2, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Fatalf("read %q, want %q", buf, want)
	}
	if err := reg.RetireAll(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryChurnRace churns spawn/quota/retire cycles from many
// goroutines at once (run under -race in CI): the registry map, the
// kernel's app table and admission scheduler, and the attribution
// dimension all see concurrent registration and eviction, and the test
// asserts everything drains back to baseline.
func TestRegistryChurnRace(t *testing.T) {
	sys := newSys(t)
	reg := NewRegistry(sys)
	baseline := len(reg.Usage())

	const workers = 8
	cycles := 50
	if testing.Short() {
		cycles = 10
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cycles; i++ {
				tn, err := reg.Spawn(kernel.Quota{MaxPages: 256, Weight: int64(w%4 + 1)})
				if err != nil {
					errs <- fmt.Errorf("worker %d spawn %d: %w", w, i, err)
					return
				}
				// Touch the lazy paths so eviction races against live rows.
				if tn.Thread(w) == nil {
					errs <- fmt.Errorf("worker %d: nil thread", w)
					return
				}
				if err := tn.SetQuota(kernel.Quota{MaxPages: 512}); err != nil {
					errs <- fmt.Errorf("worker %d requota %d: %w", w, i, err)
					return
				}
				if err := tn.Retire(); err != nil {
					errs <- fmt.Errorf("worker %d retire %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry holds %d tenants after churn", reg.Len())
	}
	if got := len(reg.Usage()); got != baseline {
		t.Fatalf("kernel usage table holds %d apps after churn, want %d", got, baseline)
	}
	if stats := sys.AppStats(); len(stats) != 0 {
		t.Fatalf("attribution dimension holds %d rows after churn: %+v", len(stats), stats)
	}
}

// TestSpawnAsCredentials checks SpawnAs threads uid/gid through to the
// LibFS and that a zero quota leaves the tenant unlimited.
func TestSpawnAsCredentials(t *testing.T) {
	sys := newSys(t)
	reg := NewRegistry(sys)
	tn, err := reg.SpawnAs(1000, 1000, kernel.Quota{})
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := sys.Ctrl.QuotaOf(tn.App()); !ok || q != (kernel.Quota{}) {
		t.Fatalf("zero-quota spawn installed %+v ok=%v", q, ok)
	}
	if err := tn.Retire(); err != nil {
		t.Fatal(err)
	}
}
