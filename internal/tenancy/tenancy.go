// Package tenancy manages populations of library file systems sharing
// one kernel Controller: an application registry that spins tenants up
// and down by the thousand. It is the serving-side complement of the
// single-app benchmarks — the interesting questions at 10k tenants are
// not per-op latency but per-idle-tenant footprint, quota containment,
// and fair sharing of the kernel crossing path, and the registry is the
// harness those are measured against.
//
// Footprint discipline: an idle tenant is a registered app plus a LibFS
// whose expensive state is all lazily allocated — directory hash tables
// appear when a directory is first walked, the per-thread persist
// batcher's dedup map on the first flush, the span tracer's ring on the
// first recorded span, the attribution histogram on the first sampled
// latency, and worker threads themselves on first use (Tenant.Thread).
// What remains is the FS shell, its RCU domain, and the kernel's
// per-app record: a few hundred bytes, pinned well under the 8 KiB
// budget by TestIdleTenantFootprint.
package tenancy

import (
	"fmt"
	"runtime"
	"sync"

	"arckfs/internal/core"
	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
)

// Tenant is one live application slot: the registered app, its LibFS,
// and a lazily-built per-CPU worker cache.
type Tenant struct {
	reg *Registry
	fs  *libfs.FS

	mu      sync.Mutex
	threads map[int]*libfs.Thread
	retired bool
}

// FS returns the tenant's library file system.
func (t *Tenant) FS() *libfs.FS { return t.fs }

// App returns the tenant's kernel application ID.
func (t *Tenant) App() kernel.AppID { return t.fs.App() }

// Thread returns the tenant's worker handle for cpu, creating it on
// first use. Lazy creation is what keeps an idle tenant from paying for
// a persist batcher and tracer lane per CPU; a retired tenant returns
// nil.
func (t *Tenant) Thread(cpu int) fsapi.Thread {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.retired {
		return nil
	}
	th := t.threads[cpu]
	if th == nil {
		th = t.fs.NewThread(cpu).(*libfs.Thread)
		if t.threads == nil {
			t.threads = make(map[int]*libfs.Thread)
		}
		t.threads[cpu] = th
	}
	return th
}

// SetQuota installs (or clears) the tenant's quota at runtime.
func (t *Tenant) SetQuota(q kernel.Quota) error {
	return t.reg.sys.Ctrl.SetQuota(t.fs.App(), q)
}

// Retire tears the tenant down: owned inodes are released back to the
// kernel, worker threads detach (returning their tracer lanes), pooled
// page grants go back to the allocator, and the app unregisters —
// which force-releases anything a voluntary release missed and evicts
// the tenant's scheduler and attribution state. The caller must have
// quiesced the tenant's own use of its threads first. Idempotent.
func (t *Tenant) Retire() error {
	t.mu.Lock()
	if t.retired {
		t.mu.Unlock()
		return nil
	}
	t.retired = true
	threads := t.threads
	t.threads = nil
	t.mu.Unlock()

	// Voluntary release first: it walks the mount table depth-first so
	// the kernel sees clean child-before-parent releases instead of the
	// force-release sweep.
	err := t.fs.ReleaseAll()
	for _, th := range threads {
		th.Detach()
	}
	t.fs.ReturnGrants()
	if rerr := t.reg.retire(t); err == nil {
		err = rerr
	}
	return err
}

// Registry tracks the live tenant population of one system.
type Registry struct {
	sys *core.System

	mu      sync.Mutex
	tenants map[kernel.AppID]*Tenant
}

// NewRegistry creates an empty registry over sys.
func NewRegistry(sys *core.System) *Registry {
	return &Registry{sys: sys, tenants: make(map[kernel.AppID]*Tenant)}
}

// System returns the underlying system.
func (r *Registry) System() *core.System { return r.sys }

// Spawn registers a new tenant (uid/gid 0) and installs q as its quota;
// a zero Quota skips the extra crossing and leaves the tenant
// unlimited.
func (r *Registry) Spawn(q kernel.Quota) (*Tenant, error) {
	return r.SpawnAs(0, 0, q)
}

// SpawnAs registers a new tenant under the given credentials.
func (r *Registry) SpawnAs(uid, gid uint32, q kernel.Quota) (*Tenant, error) {
	fs := r.sys.NewApp(uid, gid)
	if q != (kernel.Quota{}) {
		if err := r.sys.Ctrl.SetQuota(fs.App(), q); err != nil {
			return nil, fmt.Errorf("tenancy: quota for fresh app %d: %w", fs.App(), err)
		}
	}
	t := &Tenant{reg: r, fs: fs}
	r.mu.Lock()
	r.tenants[fs.App()] = t
	r.mu.Unlock()
	return t, nil
}

// retire removes t from the live set and unregisters its app.
func (r *Registry) retire(t *Tenant) error {
	r.mu.Lock()
	delete(r.tenants, t.fs.App())
	r.mu.Unlock()
	return r.sys.RetireApp(t.fs)
}

// Len returns the live tenant count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}

// Tenant returns the live tenant for app, or nil.
func (r *Registry) Tenant(app kernel.AppID) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[app]
}

// RetireAll retires every live tenant, returning the first error.
func (r *Registry) RetireAll() error {
	r.mu.Lock()
	live := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		live = append(live, t)
	}
	r.mu.Unlock()
	var first error
	for _, t := range live {
		if err := t.Retire(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Usage snapshots per-tenant outstanding grants and quotas from the
// kernel (arckshell's `tenants` table renders this).
func (r *Registry) Usage() []kernel.AppUsage {
	return r.sys.Ctrl.Usage()
}

// MeasureIdleFootprint boots a fresh system, spawns n idle tenants, and
// returns the resident heap bytes each one cost: the number
// EXPERIMENTS.md reports against the <8 KiB/tenant budget. The spawn
// crossings themselves (registration, shadow-table growth) are included
// — that is the honest cost of an idle tenant, not just its structs.
func MeasureIdleFootprint(n int) (bytesPerTenant float64, err error) {
	if n <= 0 {
		return 0, fmt.Errorf("tenancy: need n > 0, got %d", n)
	}
	sys, err := core.NewSystem(core.Config{DevSize: 64 << 20})
	if err != nil {
		return 0, err
	}
	reg := NewRegistry(sys)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	tenants := make([]*Tenant, 0, n)
	for i := 0; i < n; i++ {
		t, serr := reg.Spawn(kernel.Quota{})
		if serr != nil {
			return 0, serr
		}
		tenants = append(tenants, t)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	per := (float64(after.HeapAlloc) - float64(before.HeapAlloc)) / float64(n)
	runtime.KeepAlive(tenants)
	return per, nil
}
