// Package layout defines ArckFS's minimal persistent core state: a
// superblock, an inode table, per-directory multi-tailed dentry logs, and
// per-file block-map chains. Everything else the file system uses
// (directory hash tables, block indexes, append cursors) is per-application
// auxiliary state in DRAM, rebuilt from this core state on acquire.
//
// The package provides offset arithmetic and encode/decode helpers over a
// pmem.Device; it never decides flush or fence placement. Persistence
// ordering is the LibFS's job, because the §4.2 bug of the ArckFS+ paper
// is precisely a wrong ordering and must be expressible.
//
// Allocation state is not persisted: like other log-structured PM file
// systems, recovery rebuilds the free lists by walking the inode table
// and every reachable log and block-map page.
package layout

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"arckfs/internal/htable"
	"arckfs/internal/pmem"
)

const (
	// PageSize is the allocation unit.
	PageSize = pmem.PageSize
	// Magic identifies a formatted device.
	Magic = uint64(0x31464b4352413147) // "G1ARCKF1"
	// Version of the on-PM format.
	Version = 1

	// InodeSize is the on-PM inode record size.
	InodeSize = 128

	// RootIno is the inode number of the root directory.
	RootIno = 1

	// MaxName is the maximum file name length in bytes.
	MaxName = 255

	// DentryHeaderSize is the fixed prefix of a dentry record.
	DentryHeaderSize = 16

	// LogDataSize is the record area of a log or map page; the final 8
	// bytes hold the next-page pointer.
	LogDataSize = PageSize - 8
	// NextPtrOff is the offset of the next-page pointer within a page.
	NextPtrOff = LogDataSize

	// MapEntriesPerPage is the number of block pointers in one map page.
	MapEntriesPerPage = LogDataSize / 8

	// MaxTails bounds the directory log tail count.
	MaxTails = 64
	// DefaultTails is the tail count for new directories.
	DefaultTails = 4
)

// Inode types.
const (
	TypeFree = uint16(0)
	TypeFile = uint16(1)
	TypeDir  = uint16(2)
)

// Permission bits (a subset of POSIX, owner class only: the Trio access
// model grants or denies an application read/write on an inode).
const (
	PermRead  = uint16(0x4)
	PermWrite = uint16(0x2)
)

// Geometry describes where each region of a formatted device lives, in
// pages.
type Geometry struct {
	PageCount  uint64
	InodeCap   uint64 // number of inode slots
	TableStart uint64 // first inode-table page
	TablePages uint64
	// ShadowStart is the first page of the kernel-owned shadow inode
	// table — the ground truth the verifier compares LibFS inodes
	// against. LibFSes never map it.
	ShadowStart uint64
	ShadowPages uint64
	DataStart   uint64 // first allocatable data page
}

// Superblock field offsets (page 0).
const (
	sbMagic     = 0
	sbVersion   = 8
	sbPageCount = 16
	sbInodeCap  = 24
	sbTableSt   = 32
	sbTablePg   = 40
	sbDataSt    = 48
	sbRootIno   = 56
	sbShadowSt  = 64
	sbShadowPg  = 72
	sbCsum      = 80
)

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// Mkfs formats the device with capacity for inodeCap inodes and returns
// the geometry. It writes the superblock and a root directory inode with
// ntails log tails, persisting everything.
func Mkfs(dev *pmem.Device, inodeCap uint64, ntails int) (Geometry, error) {
	if inodeCap < 2 {
		return Geometry{}, fmt.Errorf("layout: inodeCap %d too small", inodeCap)
	}
	if ntails <= 0 || ntails > MaxTails {
		return Geometry{}, fmt.Errorf("layout: invalid tail count %d", ntails)
	}
	pages := uint64(dev.Size()) / PageSize
	tablePages := (inodeCap*InodeSize + PageSize - 1) / PageSize
	g := Geometry{
		PageCount:   pages,
		InodeCap:    inodeCap,
		TableStart:  1,
		TablePages:  tablePages,
		ShadowStart: 1 + tablePages,
		ShadowPages: tablePages,
		DataStart:   1 + 2*tablePages,
	}
	if g.DataStart+2 > pages {
		return Geometry{}, fmt.Errorf("layout: device too small: %d pages, need > %d", pages, g.DataStart+2)
	}

	// Zero the inode and shadow tables.
	dev.Zero(int64(g.TableStart*PageSize), int64((g.TablePages+g.ShadowPages)*PageSize))

	// Root directory: its tail-set page is the first data page.
	tailset := g.DataStart
	InitTailSet(dev, tailset, ntails)
	root := Inode{
		Type: TypeDir, Perm: PermRead | PermWrite,
		Nlink: 2, DataRoot: tailset, NTails: uint16(ntails), Parent: RootIno,
	}
	WriteInode(dev, g, RootIno, &root)
	WriteShadow(dev, g, RootIno, &root, &ShadowExtra{Committed: true})
	dev.Flush(InodeOff(g, RootIno), InodeSize)
	dev.Flush(ShadowOff(g, RootIno), InodeSize)
	dev.Flush(int64(tailset*PageSize), PageSize)
	dev.Fence()

	// Superblock last, so a formatted magic implies a complete format.
	sb := int64(0)
	dev.Store64(sb+sbMagic, Magic)
	dev.Store32(sb+sbVersion, Version)
	dev.Store64(sb+sbPageCount, pages)
	dev.Store64(sb+sbInodeCap, inodeCap)
	dev.Store64(sb+sbTableSt, g.TableStart)
	dev.Store64(sb+sbTablePg, g.TablePages)
	dev.Store64(sb+sbDataSt, g.DataStart)
	dev.Store64(sb+sbRootIno, RootIno)
	dev.Store64(sb+sbShadowSt, g.ShadowStart)
	dev.Store64(sb+sbShadowPg, g.ShadowPages)
	dev.Store32(sb+sbCsum, crc32.Checksum(dev.Slice(0, sbCsum), crcTab))
	dev.Persist(0, sbCsum+4)
	return g, nil
}

// Load reads and validates the superblock.
func Load(dev *pmem.Device) (Geometry, error) {
	if dev.Load64(sbMagic) != Magic {
		return Geometry{}, fmt.Errorf("layout: bad magic %#x", dev.Load64(sbMagic))
	}
	if v := dev.Load32(sbVersion); v != Version {
		return Geometry{}, fmt.Errorf("layout: unsupported version %d", v)
	}
	if got, want := dev.Load32(sbCsum), crc32.Checksum(dev.Slice(0, sbCsum), crcTab); got != want {
		return Geometry{}, fmt.Errorf("layout: superblock checksum %#x, want %#x", got, want)
	}
	g := Geometry{
		PageCount:   dev.Load64(sbPageCount),
		InodeCap:    dev.Load64(sbInodeCap),
		TableStart:  dev.Load64(sbTableSt),
		TablePages:  dev.Load64(sbTablePg),
		ShadowStart: dev.Load64(sbShadowSt),
		ShadowPages: dev.Load64(sbShadowPg),
		DataStart:   dev.Load64(sbDataSt),
	}
	if g.PageCount*PageSize > uint64(dev.Size()) || g.DataStart >= g.PageCount {
		return Geometry{}, fmt.Errorf("layout: inconsistent geometry %+v", g)
	}
	return g, nil
}

// Inode is the decoded on-PM inode record. The Parent field is the shadow
// parent pointer the §4.1 patch relies on: it is only ever advanced by
// verified commits, so the verifier can tell "renamed away" from
// "deleted".
type Inode struct {
	Type     uint16
	Perm     uint16
	Nlink    uint16
	NTails   uint16 // directories: log tail count
	UID      uint32
	GID      uint32
	Size     uint64
	DataRoot uint64 // file: first map page; dir: tail-set page
	Parent   uint64
	Gen      uint64
	CTime    uint64
	MTime    uint64
}

// Inode record offsets.
const (
	inType   = 0
	inPerm   = 2
	inNlink  = 4
	inNTails = 6
	inUID    = 8
	inGID    = 12
	inSize   = 16
	inRoot   = 24
	inParent = 32
	inGen    = 40
	inCTime  = 48
	inMTime  = 56
	inCsum   = 124 // crc32c over [0,124)
)

// InodeOff returns the device offset of inode ino's record.
func InodeOff(g Geometry, ino uint64) int64 {
	if ino == 0 || ino >= g.InodeCap {
		panic(fmt.Sprintf("layout: inode %d out of range [1,%d)", ino, g.InodeCap))
	}
	return int64(g.TableStart*PageSize) + int64(ino)*InodeSize
}

// WriteInode encodes in at ino's slot, including the checksum. The caller
// is responsible for flushing and fencing.
func WriteInode(dev *pmem.Device, g Geometry, ino uint64, in *Inode) {
	off := InodeOff(g, ino)
	dev.Store16(off+inType, in.Type)
	dev.Store16(off+inPerm, in.Perm)
	dev.Store16(off+inNlink, in.Nlink)
	dev.Store16(off+inNTails, in.NTails)
	dev.Store32(off+inUID, in.UID)
	dev.Store32(off+inGID, in.GID)
	dev.Store64(off+inSize, in.Size)
	dev.Store64(off+inRoot, in.DataRoot)
	dev.Store64(off+inParent, in.Parent)
	dev.Store64(off+inGen, in.Gen)
	dev.Store64(off+inCTime, in.CTime)
	dev.Store64(off+inMTime, in.MTime)
	dev.Store32(off+inCsum, crc32.Checksum(dev.Slice(off, inCsum), crcTab))
}

// EncodeInode renders in as a complete InodeSize-byte record — all
// fields, zero padding, checksum — for callers that store the whole
// record at once with streaming (non-temporal) stores instead of
// field-by-field with a trailing flush. The record is two full cache
// lines, so a pmem.Batch can WriteStream it with no clwb at all.
//
// The checksum is computed over the rendered buffer, so unlike WriteInode
// (which checksums whatever the padding bytes on the device happen to
// hold) an encoded record always has zeroed padding; both forms verify
// under ReadInode.
func EncodeInode(in *Inode) [InodeSize]byte {
	var rec [InodeSize]byte
	binary.LittleEndian.PutUint16(rec[inType:], in.Type)
	binary.LittleEndian.PutUint16(rec[inPerm:], in.Perm)
	binary.LittleEndian.PutUint16(rec[inNlink:], in.Nlink)
	binary.LittleEndian.PutUint16(rec[inNTails:], in.NTails)
	binary.LittleEndian.PutUint32(rec[inUID:], in.UID)
	binary.LittleEndian.PutUint32(rec[inGID:], in.GID)
	binary.LittleEndian.PutUint64(rec[inSize:], in.Size)
	binary.LittleEndian.PutUint64(rec[inRoot:], in.DataRoot)
	binary.LittleEndian.PutUint64(rec[inParent:], in.Parent)
	binary.LittleEndian.PutUint64(rec[inGen:], in.Gen)
	binary.LittleEndian.PutUint64(rec[inCTime:], in.CTime)
	binary.LittleEndian.PutUint64(rec[inMTime:], in.MTime)
	binary.LittleEndian.PutUint32(rec[inCsum:], crc32.Checksum(rec[:inCsum], crcTab))
	return rec
}

// ReadInode decodes ino's record. ok is false for a free slot; corrupt is
// true when the record fails its checksum (e.g. a partially persisted
// inode after a crash, §4.2).
func ReadInode(dev *pmem.Device, g Geometry, ino uint64) (in Inode, ok, corrupt bool) {
	off := InodeOff(g, ino)
	in = Inode{
		Type:     dev.Load16(off + inType),
		Perm:     dev.Load16(off + inPerm),
		Nlink:    dev.Load16(off + inNlink),
		NTails:   dev.Load16(off + inNTails),
		UID:      dev.Load32(off + inUID),
		GID:      dev.Load32(off + inGID),
		Size:     dev.Load64(off + inSize),
		DataRoot: dev.Load64(off + inRoot),
		Parent:   dev.Load64(off + inParent),
		Gen:      dev.Load64(off + inGen),
		CTime:    dev.Load64(off + inCTime),
		MTime:    dev.Load64(off + inMTime),
	}
	if in.Type == TypeFree {
		return in, false, false
	}
	if dev.Load32(off+inCsum) != crc32.Checksum(dev.Slice(off, inCsum), crcTab) {
		return in, false, true
	}
	return in, true, false
}

// FreeInode marks ino's slot free. Caller persists.
func FreeInode(dev *pmem.Device, g Geometry, ino uint64) {
	off := InodeOff(g, ino)
	dev.Store16(off+inType, TypeFree)
	dev.Store32(off+inCsum, 0)
}

// --- Directory tail sets -------------------------------------------------

// Tail-set page: ntails u16 at 0, tail head page numbers (u64) at 8+i*8.

// InitTailSet formats page as a tail-set with n empty tails.
func InitTailSet(dev *pmem.Device, page uint64, n int) {
	off := int64(page * PageSize)
	dev.Zero(off, PageSize)
	dev.Store16(off, uint16(n))
}

// SetTailCount writes the tail count of an (already zeroed) tail-set
// page. Caller persists; callers that stream-zero the page with
// non-temporal stores use this instead of InitTailSet to avoid re-zeroing
// through the cache.
func SetTailCount(dev *pmem.Device, page uint64, n int) {
	dev.Store16(int64(page*PageSize), uint16(n))
}

// TailCount reads the tail count of a tail-set page.
func TailCount(dev *pmem.Device, page uint64) int {
	return int(dev.Load16(int64(page * PageSize)))
}

// TailHead returns tail i's first log page (0 = empty tail).
func TailHead(dev *pmem.Device, page uint64, i int) uint64 {
	return dev.Load64(int64(page*PageSize) + 8 + int64(i)*8)
}

// SetTailHead links tail i to head. Caller persists.
func SetTailHead(dev *pmem.Device, page uint64, i int, head uint64) {
	dev.Store64(int64(page*PageSize)+8+int64(i)*8, head)
}

// --- Log pages (shared by dentry logs and block maps) --------------------

// NextPage reads a page's next pointer.
func NextPage(dev *pmem.Device, page uint64) uint64 {
	return dev.Load64(int64(page*PageSize) + NextPtrOff)
}

// SetNextPage writes a page's next pointer. Caller persists.
func SetNextPage(dev *pmem.Device, page, next uint64) {
	dev.Store64(int64(page*PageSize)+NextPtrOff, next)
}

// ZeroPage clears a page (new log/map pages must start zeroed so scans
// terminate). Caller persists.
func ZeroPage(dev *pmem.Device, page uint64) {
	dev.Zero(int64(page*PageSize), PageSize)
}

// --- Dentry records -------------------------------------------------------

// Dentry record encoding, 8-byte aligned within a log page's data area:
//
//	off  size  field
//	0    8     ino
//	8    2     recLen (total record length; persisted before commit)
//	10   4     name hash (FNV-1a; lets recovery detect a torn name)
//	14   2     nameLen — THE COMMIT MARKER (paper footnote 2): 0 means
//	           "not yet created or already deleted"; nonzero commits the
//	           record and must equal the name's length.
//	16   n     name bytes
const (
	deIno     = 0
	deRecLen  = 8
	deHash    = 10
	deNameLen = 14
	deName    = DentryHeaderSize
)

// DentryRecLen returns the record length for a name of n bytes.
func DentryRecLen(n int) int {
	return DentryHeaderSize + (n+7)/8*8
}

// DentryFits reports whether a record for a name of n bytes fits at
// data-area offset off.
func DentryFits(off int, n int) bool {
	return off+DentryRecLen(n) <= LogDataSize
}

// DentryRef packs a record's location (page number and in-page offset)
// into one word, the payload the aux hash table stores.
type DentryRef uint64

// MakeDentryRef builds a ref.
func MakeDentryRef(page uint64, off int) DentryRef {
	return DentryRef(page*PageSize + uint64(off))
}

// Page returns the log page number.
func (r DentryRef) Page() uint64 { return uint64(r) / PageSize }

// Off returns the in-page offset.
func (r DentryRef) Off() int { return int(uint64(r) % PageSize) }

// DevOff returns the absolute device offset of the record.
func (r DentryRef) DevOff() int64 { return int64(r) }

// MarkerOff returns the absolute device offset of the record's commit
// marker, for line-granular persist decisions.
func (r DentryRef) MarkerOff() int64 { return int64(r) + deNameLen }

// WriteDentryBody writes everything except the commit marker: ino,
// recLen, hash and the name bytes, leaving nameLen zero (step 1 of the
// paper's §4.4 atomic-commit protocol). Caller persists per protocol.
func WriteDentryBody(dev *pmem.Device, r DentryRef, ino uint64, name string) {
	off := r.DevOff()
	dev.Store64(off+deIno, ino)
	dev.Store16(off+deRecLen, uint16(DentryRecLen(len(name))))
	dev.Store32(off+deHash, htable.Hash(name))
	dev.Store16(off+deNameLen, 0)
	dev.Write(off+deName, []byte(name))
}

// CommitDentry sets the commit marker (step 2). Caller persists the
// marker's cache line.
func CommitDentry(dev *pmem.Device, r DentryRef, nameLen int) {
	dev.Store16(r.MarkerOff(), uint16(nameLen))
}

// InvalidateDentry clears the commit marker, deleting the entry. Caller
// persists.
func InvalidateDentry(dev *pmem.Device, r DentryRef) {
	dev.Store16(r.MarkerOff(), 0)
}

// Dentry is a decoded record.
type Dentry struct {
	Ref    DentryRef
	Ino    uint64
	Name   string
	Live   bool // commit marker nonzero
	RecLen int
}

// ReadDentry decodes the record at r. corrupt is true when the committed
// marker disagrees with the stored hash or length — the §4.2 partial
// persist signature.
func ReadDentry(dev *pmem.Device, r DentryRef) (d Dentry, corrupt bool) {
	off := r.DevOff()
	d.Ref = r
	d.Ino = dev.Load64(off + deIno)
	d.RecLen = int(dev.Load16(off + deRecLen))
	nameLen := int(dev.Load16(off + deNameLen))
	if nameLen == 0 {
		return d, false
	}
	d.Live = true
	if nameLen > MaxName || DentryRecLen(nameLen) != d.RecLen || d.Ino == 0 {
		return d, true
	}
	name := string(dev.Slice(off+deName, int64(nameLen)))
	if htable.Hash(name) != dev.Load32(off+deHash) {
		return d, true
	}
	d.Name = name
	return d, false
}

// ScanTail walks one tail's log pages from head, invoking fn for every
// record slot (live or dead) until the log's append frontier. It returns
// the tail's frontier (page, offset, and the last page visited) so a
// LibFS can rebuild its append cursor, and whether any committed record
// was corrupt.
func ScanTail(dev *pmem.Device, head uint64, fn func(Dentry) bool) (lastPage uint64, lastOff int, corrupt bool) {
	page := head
	for page != 0 {
		off := 0
		for off+DentryHeaderSize <= LogDataSize {
			r := MakeDentryRef(page, off)
			recLen := int(dev.Load16(r.DevOff() + deRecLen))
			if recLen == 0 {
				// Append frontier of this page; if a next page exists the
				// append cursor moved on and scanning continues there.
				break
			}
			if recLen < DentryHeaderSize || recLen%8 != 0 || off+recLen > LogDataSize {
				// Torn length: stop at the corruption.
				return page, off, true
			}
			d, c := ReadDentry(dev, r)
			if c {
				corrupt = true
			}
			if fn != nil && !fn(d) {
				return page, off + recLen, corrupt
			}
			off += recLen
		}
		next := NextPage(dev, page)
		if next == 0 {
			return page, off, corrupt
		}
		page = next
	}
	return 0, 0, corrupt
}

// --- Block maps -----------------------------------------------------------

// Block-map pages are chains: MapEntriesPerPage u64 block pointers per
// page, next pointer in the page tail. Entry k of a file's map is entry
// k%MapEntriesPerPage of chain page k/MapEntriesPerPage.

// MapEntry reads entry i of the map page.
func MapEntry(dev *pmem.Device, page uint64, i int) uint64 {
	return dev.Load64(int64(page*PageSize) + int64(i)*8)
}

// SetMapEntry writes entry i of the map page. Caller persists.
func SetMapEntry(dev *pmem.Device, page uint64, i int, block uint64) {
	dev.Store64(int64(page*PageSize)+int64(i)*8, block)
}

// WalkBlockMap reads the whole block-pointer array of a file whose map
// chain starts at root, stopping after nblocks entries.
func WalkBlockMap(dev *pmem.Device, root uint64, nblocks int) []uint64 {
	blocks := make([]uint64, 0, nblocks)
	page := root
	for page != 0 && len(blocks) < nblocks {
		for i := 0; i < MapEntriesPerPage && len(blocks) < nblocks; i++ {
			blocks = append(blocks, MapEntry(dev, page, i))
		}
		page = NextPage(dev, page)
	}
	return blocks
}

// MapChainPages returns the page numbers of the map chain itself.
func MapChainPages(dev *pmem.Device, root uint64) []uint64 {
	var pages []uint64
	for page := root; page != 0; page = NextPage(dev, page) {
		pages = append(pages, page)
		if len(pages) > 1<<20 {
			// Defensive bound against cyclic corruption.
			return pages
		}
	}
	return pages
}

// BlocksForSize returns how many data blocks a file of size bytes uses.
func BlocksForSize(size uint64) int {
	return int((size + PageSize - 1) / PageSize)
}

// ValidName reports whether a file name is acceptable.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > MaxName || name == "." || name == ".." {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return false
		}
	}
	return true
}
