package layout

import (
	"hash/crc32"

	"arckfs/internal/pmem"
)

// The shadow inode table mirrors the LibFS-visible inode table but is
// owned exclusively by the kernel: it records, for every *verified*
// inode, the attributes the verifier compares against, the parent pointer
// introduced by the §4.1 patch, and the verified child count used for the
// I3 empty-directory check. Recovery trusts the shadow table and
// reconciles LibFS core state against it.

// ShadowExtra carries the shadow-only fields beyond the mirrored inode.
type ShadowExtra struct {
	ChildCount   uint32
	Committed    bool
	Inaccessible bool
}

// Shadow record extra-field offsets (within the 128-byte record; the
// mirrored inode fields use the same offsets as the inode table).
const (
	shChildCount = 64
	shFlags      = 68

	shFlagCommitted    = 1 << 0
	shFlagInaccessible = 1 << 1
)

// ShadowOff returns the device offset of ino's shadow record.
func ShadowOff(g Geometry, ino uint64) int64 {
	if ino == 0 || ino >= g.InodeCap {
		panic("layout: shadow inode out of range")
	}
	return int64(g.ShadowStart*PageSize) + int64(ino)*InodeSize
}

// WriteShadow encodes the shadow record for ino. Caller persists (the
// kernel always flushes and fences its own writes — the kernel is assumed
// correct; only LibFS ordering is under test).
func WriteShadow(dev *pmem.Device, g Geometry, ino uint64, in *Inode, ex *ShadowExtra) {
	off := ShadowOff(g, ino)
	dev.Store16(off+inType, in.Type)
	dev.Store16(off+inPerm, in.Perm)
	dev.Store16(off+inNlink, in.Nlink)
	dev.Store16(off+inNTails, in.NTails)
	dev.Store32(off+inUID, in.UID)
	dev.Store32(off+inGID, in.GID)
	dev.Store64(off+inSize, in.Size)
	dev.Store64(off+inRoot, in.DataRoot)
	dev.Store64(off+inParent, in.Parent)
	dev.Store64(off+inGen, in.Gen)
	dev.Store64(off+inCTime, in.CTime)
	dev.Store64(off+inMTime, in.MTime)
	dev.Store32(off+shChildCount, ex.ChildCount)
	var fl uint8
	if ex.Committed {
		fl |= shFlagCommitted
	}
	if ex.Inaccessible {
		fl |= shFlagInaccessible
	}
	dev.Store8(off+shFlags, fl)
	dev.Store32(off+inCsum, crc32.Checksum(dev.Slice(off, inCsum), crcTab))
}

// ReadShadow decodes ino's shadow record.
func ReadShadow(dev *pmem.Device, g Geometry, ino uint64) (in Inode, ex ShadowExtra, ok, corrupt bool) {
	off := ShadowOff(g, ino)
	in = Inode{
		Type:     dev.Load16(off + inType),
		Perm:     dev.Load16(off + inPerm),
		Nlink:    dev.Load16(off + inNlink),
		NTails:   dev.Load16(off + inNTails),
		UID:      dev.Load32(off + inUID),
		GID:      dev.Load32(off + inGID),
		Size:     dev.Load64(off + inSize),
		DataRoot: dev.Load64(off + inRoot),
		Parent:   dev.Load64(off + inParent),
		Gen:      dev.Load64(off + inGen),
		CTime:    dev.Load64(off + inCTime),
		MTime:    dev.Load64(off + inMTime),
	}
	if in.Type == TypeFree {
		return in, ex, false, false
	}
	if dev.Load32(off+inCsum) != crc32.Checksum(dev.Slice(off, inCsum), crcTab) {
		return in, ex, false, true
	}
	fl := dev.Load8(off + shFlags)
	ex = ShadowExtra{
		ChildCount:   dev.Load32(off + shChildCount),
		Committed:    fl&shFlagCommitted != 0,
		Inaccessible: fl&shFlagInaccessible != 0,
	}
	return in, ex, true, false
}

// FreeShadow clears ino's shadow record. Caller persists.
func FreeShadow(dev *pmem.Device, g Geometry, ino uint64) {
	off := ShadowOff(g, ino)
	dev.Store16(off+inType, TypeFree)
	dev.Store32(off+inCsum, 0)
}

// PersistShadow flushes and fences ino's shadow record.
func PersistShadow(dev *pmem.Device, g Geometry, ino uint64) {
	dev.Persist(ShadowOff(g, ino), InodeSize)
}
