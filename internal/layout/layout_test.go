package layout

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"arckfs/internal/pmem"
)

func newDev(t *testing.T, pages int) (*pmem.Device, Geometry) {
	t.Helper()
	dev := pmem.New(int64(pages)*PageSize, nil)
	g, err := Mkfs(dev, 128, DefaultTails)
	if err != nil {
		t.Fatal(err)
	}
	return dev, g
}

func TestMkfsLoadRoundTrip(t *testing.T) {
	dev, g := newDev(t, 64)
	g2, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatalf("Load = %+v, want %+v", g2, g)
	}
	root, ok, corrupt := ReadInode(dev, g, RootIno)
	if !ok || corrupt {
		t.Fatalf("root inode ok=%v corrupt=%v", ok, corrupt)
	}
	if root.Type != TypeDir || root.NTails != DefaultTails || root.Parent != RootIno {
		t.Fatalf("root = %+v", root)
	}
	if TailCount(dev, root.DataRoot) != DefaultTails {
		t.Fatalf("tail count = %d", TailCount(dev, root.DataRoot))
	}
}

func TestMkfsErrors(t *testing.T) {
	dev := pmem.New(8*PageSize, nil)
	if _, err := Mkfs(dev, 1, DefaultTails); err == nil {
		t.Fatal("tiny inodeCap accepted")
	}
	if _, err := Mkfs(dev, 16, 0); err == nil {
		t.Fatal("zero tails accepted")
	}
	if _, err := Mkfs(dev, 1<<20, DefaultTails); err == nil {
		t.Fatal("oversized inode table accepted")
	}
}

func TestLoadRejectsUnformatted(t *testing.T) {
	dev := pmem.New(16*PageSize, nil)
	if _, err := Load(dev); err == nil {
		t.Fatal("Load of unformatted device succeeded")
	}
}

func TestLoadRejectsCorruptSuperblock(t *testing.T) {
	dev, _ := newDev(t, 64)
	dev.Store64(16, 999999) // corrupt pageCount without fixing csum
	if _, err := Load(dev); err == nil {
		t.Fatal("corrupt superblock accepted")
	}
}

func TestInodeRoundTrip(t *testing.T) {
	dev, g := newDev(t, 64)
	in := Inode{
		Type: TypeFile, Perm: PermRead | PermWrite, Nlink: 1,
		UID: 1000, GID: 100, Size: 12345, DataRoot: 17, Parent: RootIno,
		Gen: 3, CTime: 111, MTime: 222,
	}
	WriteInode(dev, g, 5, &in)
	got, ok, corrupt := ReadInode(dev, g, 5)
	if !ok || corrupt {
		t.Fatalf("ok=%v corrupt=%v", ok, corrupt)
	}
	if got != in {
		t.Fatalf("got %+v want %+v", got, in)
	}
}

func TestInodeChecksumDetectsCorruption(t *testing.T) {
	dev, g := newDev(t, 64)
	in := Inode{Type: TypeFile, Perm: PermRead, Nlink: 1}
	WriteInode(dev, g, 5, &in)
	dev.Store64(InodeOff(g, 5)+inSize, 777) // corrupt without re-checksumming
	_, ok, corrupt := ReadInode(dev, g, 5)
	if ok || !corrupt {
		t.Fatalf("ok=%v corrupt=%v, want corruption detected", ok, corrupt)
	}
}

func TestFreeInode(t *testing.T) {
	dev, g := newDev(t, 64)
	WriteInode(dev, g, 7, &Inode{Type: TypeFile, Nlink: 1})
	FreeInode(dev, g, 7)
	_, ok, corrupt := ReadInode(dev, g, 7)
	if ok || corrupt {
		t.Fatalf("freed inode: ok=%v corrupt=%v", ok, corrupt)
	}
}

func TestInodeOffBounds(t *testing.T) {
	_, g := newDev(t, 64)
	for _, ino := range []uint64{0, g.InodeCap} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("InodeOff(%d) did not panic", ino)
				}
			}()
			InodeOff(g, ino)
		}()
	}
}

func TestDentryWriteCommitRead(t *testing.T) {
	dev, g := newDev(t, 64)
	page := g.DataStart + 1
	ZeroPage(dev, page)
	r := MakeDentryRef(page, 0)
	WriteDentryBody(dev, r, 42, "hello.txt")

	// Before commit: not live.
	d, corrupt := ReadDentry(dev, r)
	if d.Live || corrupt {
		t.Fatalf("uncommitted dentry live=%v corrupt=%v", d.Live, corrupt)
	}
	CommitDentry(dev, r, len("hello.txt"))
	d, corrupt = ReadDentry(dev, r)
	if !d.Live || corrupt || d.Ino != 42 || d.Name != "hello.txt" {
		t.Fatalf("dentry = %+v corrupt=%v", d, corrupt)
	}
	if d.RecLen != DentryRecLen(9) {
		t.Fatalf("RecLen = %d", d.RecLen)
	}

	InvalidateDentry(dev, r)
	d, corrupt = ReadDentry(dev, r)
	if d.Live || corrupt {
		t.Fatalf("invalidated dentry live=%v", d.Live)
	}
}

func TestDentryCorruptionDetection(t *testing.T) {
	dev, g := newDev(t, 64)
	page := g.DataStart + 1
	ZeroPage(dev, page)
	r := MakeDentryRef(page, 0)
	name := strings.Repeat("x", 100) // spans multiple cache lines
	WriteDentryBody(dev, r, 7, name)
	CommitDentry(dev, r, len(name))

	// Tear the name tail, as a §4.2 crash would.
	dev.Zero(r.DevOff()+DentryHeaderSize+64, 36)
	if _, corrupt := ReadDentry(dev, r); !corrupt {
		t.Fatal("torn name not detected")
	}
}

func TestDentryRefPacking(t *testing.T) {
	r := MakeDentryRef(123, 456)
	if r.Page() != 123 || r.Off() != 456 {
		t.Fatalf("ref = page %d off %d", r.Page(), r.Off())
	}
	if r.DevOff() != 123*PageSize+456 {
		t.Fatalf("DevOff = %d", r.DevOff())
	}
	if r.MarkerOff() != r.DevOff()+14 {
		t.Fatalf("MarkerOff = %d", r.MarkerOff())
	}
}

func TestScanTailMultiPage(t *testing.T) {
	dev, g := newDev(t, 64)
	p1, p2 := g.DataStart+1, g.DataStart+2
	ZeroPage(dev, p1)
	ZeroPage(dev, p2)

	// Fill p1 nearly full, then link p2 and continue there.
	off := 0
	var want []string
	i := 0
	for {
		name := fmt.Sprintf("file-%04d", i)
		if !DentryFits(off, len(name)) {
			break
		}
		r := MakeDentryRef(p1, off)
		WriteDentryBody(dev, r, uint64(i+10), name)
		CommitDentry(dev, r, len(name))
		want = append(want, name)
		off += DentryRecLen(len(name))
		i++
	}
	SetNextPage(dev, p1, p2)
	r := MakeDentryRef(p2, 0)
	WriteDentryBody(dev, r, 9999, "overflow")
	CommitDentry(dev, r, len("overflow"))
	want = append(want, "overflow")

	var got []string
	lastPage, lastOff, corrupt := ScanTail(dev, p1, func(d Dentry) bool {
		if d.Live {
			got = append(got, d.Name)
		}
		return true
	})
	if corrupt {
		t.Fatal("unexpected corruption")
	}
	if lastPage != p2 || lastOff != DentryRecLen(len("overflow")) {
		t.Fatalf("frontier = (%d,%d)", lastPage, lastOff)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q want %q", i, got[i], want[i])
		}
	}
}

func TestScanTailSkipsDeadAndStops(t *testing.T) {
	dev, g := newDev(t, 64)
	p := g.DataStart + 1
	ZeroPage(dev, p)
	off := 0
	for i := 0; i < 5; i++ {
		r := MakeDentryRef(p, off)
		name := fmt.Sprintf("n%d", i)
		WriteDentryBody(dev, r, uint64(i+1), name)
		CommitDentry(dev, r, len(name))
		if i%2 == 1 {
			InvalidateDentry(dev, r)
		}
		off += DentryRecLen(len(name))
	}
	live, dead := 0, 0
	ScanTail(dev, p, func(d Dentry) bool {
		if d.Live {
			live++
		} else {
			dead++
		}
		return true
	})
	if live != 3 || dead != 2 {
		t.Fatalf("live=%d dead=%d", live, dead)
	}
	// Early stop.
	n := 0
	ScanTail(dev, p, func(d Dentry) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanTailTornLength(t *testing.T) {
	dev, g := newDev(t, 64)
	p := g.DataStart + 1
	ZeroPage(dev, p)
	r := MakeDentryRef(p, 0)
	dev.Store16(r.DevOff()+8, 12345) // recLen not multiple of 8, too large
	_, _, corrupt := ScanTail(dev, p, nil)
	if !corrupt {
		t.Fatal("torn recLen not reported")
	}
}

func TestBlockMapHelpers(t *testing.T) {
	dev, g := newDev(t, 128)
	m1, m2 := g.DataStart+1, g.DataStart+2
	ZeroPage(dev, m1)
	ZeroPage(dev, m2)
	SetNextPage(dev, m1, m2)
	for i := 0; i < MapEntriesPerPage; i++ {
		SetMapEntry(dev, m1, i, uint64(1000+i))
	}
	SetMapEntry(dev, m2, 0, 5000)

	n := MapEntriesPerPage + 1
	blocks := WalkBlockMap(dev, m1, n)
	if len(blocks) != n {
		t.Fatalf("walked %d blocks", len(blocks))
	}
	if blocks[0] != 1000 || blocks[MapEntriesPerPage-1] != uint64(1000+MapEntriesPerPage-1) || blocks[MapEntriesPerPage] != 5000 {
		t.Fatalf("blocks = %d %d %d", blocks[0], blocks[MapEntriesPerPage-1], blocks[MapEntriesPerPage])
	}
	chain := MapChainPages(dev, m1)
	if len(chain) != 2 || chain[0] != m1 || chain[1] != m2 {
		t.Fatalf("chain = %v", chain)
	}
}

func TestBlocksForSize(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, PageSize: 1, PageSize + 1: 2, 10 * PageSize: 10}
	for size, want := range cases {
		if got := BlocksForSize(size); got != want {
			t.Fatalf("BlocksForSize(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a", "hello.txt", strings.Repeat("x", MaxName)}
	bad := []string{"", ".", "..", "a/b", "a\x00b", strings.Repeat("x", MaxName+1)}
	for _, n := range good {
		if !ValidName(n) {
			t.Fatalf("ValidName(%q) = false", n)
		}
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Fatalf("ValidName(%q) = true", n)
		}
	}
}

// Property: inode encode/decode round-trips for arbitrary field values.
func TestQuickInodeRoundTrip(t *testing.T) {
	dev, g := newDev(t, 64)
	f := func(perm, nlink, ntails uint16, uid, gid uint32, size, root, parent, gen, ct, mt uint64) bool {
		in := Inode{
			Type: TypeFile, Perm: perm, Nlink: nlink, NTails: ntails,
			UID: uid, GID: gid, Size: size, DataRoot: root, Parent: parent,
			Gen: gen, CTime: ct, MTime: mt,
		}
		WriteInode(dev, g, 3, &in)
		got, ok, corrupt := ReadInode(dev, g, 3)
		return ok && !corrupt && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a log of random append/commit/invalidate operations scans back
// to exactly the set of live names.
func TestQuickScanMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(64*PageSize, nil)
		g, err := Mkfs(dev, 16, 1)
		if err != nil {
			return false
		}
		head := g.DataStart + 1
		ZeroPage(dev, head)
		page, off := head, 0
		type rec struct {
			ref  DentryRef
			name string
		}
		var live []rec
		model := map[string]uint64{}
		for i := 0; i < 150; i++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				name := fmt.Sprintf("f%d-%s", i, strings.Repeat("y", rng.Intn(40)))
				if !DentryFits(off, len(name)) {
					np := page + 1 // test arena: pages are sequential
					if np >= g.PageCount {
						break
					}
					ZeroPage(dev, np)
					SetNextPage(dev, page, np)
					page, off = np, 0
				}
				r := MakeDentryRef(page, off)
				WriteDentryBody(dev, r, uint64(i+1), name)
				CommitDentry(dev, r, len(name))
				off += DentryRecLen(len(name))
				live = append(live, rec{r, name})
				model[name] = uint64(i + 1)
			} else {
				k := rng.Intn(len(live))
				InvalidateDentry(dev, live[k].ref)
				delete(model, live[k].name)
				live = append(live[:k], live[k+1:]...)
			}
		}
		got := map[string]uint64{}
		_, _, corrupt := ScanTail(dev, head, func(d Dentry) bool {
			if d.Live {
				got[d.Name] = d.Ino
			}
			return true
		})
		if corrupt || len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
