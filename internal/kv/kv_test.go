package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"arckfs/internal/baseline/nova"
	"arckfs/internal/core"
	"arckfs/internal/fsapi"
)

func newStore(t testing.TB, opts Options) (*DB, fsapi.FS) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{DevSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp(0, 0)
	db, err := Open(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, app
}

func TestPutGetDelete(t *testing.T) {
	db, _ := newStore(t, Options{})
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k1"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := db.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Get([]byte("k1"))
	if string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
	if err := db.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k1")); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("deleted key: %v", err)
	}
	if _, err := db.Get([]byte("never")); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("missing key: %v", err)
	}
	if err := db.Put(nil, []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestFlushAndCompactionPreserveData(t *testing.T) {
	db, _ := newStore(t, Options{MemtableBytes: 8 << 10, L0Tables: 2, MaxLevels: 4})
	want := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%05d", i%500)
		v := fmt.Sprintf("val-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Compactions must have run.
	stats := db.Stats()
	total := 0
	for _, n := range stats {
		total += n
	}
	if total == 0 {
		t.Fatal("no tables on disk after 2000 writes")
	}
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v (want %q); levels=%v", k, got, err, v, stats)
		}
	}
}

func TestTombstonesSurviveCompaction(t *testing.T) {
	db, _ := newStore(t, Options{MemtableBytes: 4 << 10, L0Tables: 2, MaxLevels: 4})
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("x"), 64))
	}
	for i := 0; i < 300; i += 2 {
		if err := db.Delete([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Churn to force more flushes and compactions.
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("pad%04d", i)), bytes.Repeat([]byte("y"), 64))
	}
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		_, err := db.Get(k)
		if i%2 == 0 {
			if !errors.Is(err, fsapi.ErrNotExist) {
				t.Fatalf("deleted %s resurfaced: %v", k, err)
			}
		} else if err != nil {
			t.Fatalf("surviving %s lost: %v", k, err)
		}
	}
}

func TestReopenRecoversFromManifestAndWAL(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp(0, 0)
	db, err := Open(app, Options{MemtableBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("p%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	// Do NOT close: the memtable tail lives only in the WAL.
	db2, err := Open(app, Options{MemtableBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		got, err := db2.Get([]byte(fmt.Sprintf("p%04d", i)))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after reopen Get(p%04d) = %q, %v", i, got, err)
		}
	}
}

func TestIteratorOrderAndShadowing(t *testing.T) {
	db, _ := newStore(t, Options{MemtableBytes: 2 << 10, L0Tables: 2})
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("it%04d", i)), []byte("old"))
	}
	// Overwrite some, delete some; newest versions must win.
	for i := 0; i < 200; i += 3 {
		db.Put([]byte(fmt.Sprintf("it%04d", i)), []byte("new"))
	}
	for i := 1; i < 200; i += 3 {
		db.Delete([]byte(fmt.Sprintf("it%04d", i)))
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	seen := 0
	for it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("iterator out of order: %q then %q", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		i := 0
		fmt.Sscanf(string(it.Key()), "it%04d", &i)
		switch i % 3 {
		case 0:
			if string(it.Value()) != "new" {
				t.Fatalf("key %q = %q, want new", it.Key(), it.Value())
			}
		case 1:
			t.Fatalf("deleted key %q visible", it.Key())
		case 2:
			if string(it.Value()) != "old" {
				t.Fatalf("key %q = %q, want old", it.Key(), it.Value())
			}
		}
		seen++
	}
	want := 200 - len43(200) // 200 minus the deleted third
	if seen != want {
		t.Fatalf("iterator saw %d keys, want %d", seen, want)
	}
}

// len43 counts i in [0,200) with i%3==1.
func len43(n int) int {
	c := 0
	for i := 1; i < n; i += 3 {
		c++
	}
	return c
}

func TestOnNovaBaseline(t *testing.T) {
	fs, err := nova.New(128<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(fs, Options{MemtableBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("n%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Get([]byte("n0042")); err != nil {
		t.Fatal(err)
	}
}

// Property: the store behaves like a map under random operations with
// random flush points.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, _ := newStore(t, Options{MemtableBytes: 4 << 10, L0Tables: 2, MaxLevels: 3})
		model := map[string]string{}
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("q%03d", rng.Intn(80))
			switch rng.Intn(4) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Int63())
				if db.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			case 2:
				if db.Delete([]byte(k)) != nil {
					return false
				}
				delete(model, k)
			case 3:
				got, err := db.Get([]byte(k))
				want, ok := model[k]
				if ok != (err == nil) {
					return false
				}
				if ok && string(got) != want {
					return false
				}
			}
			if rng.Intn(100) == 0 {
				if db.Flush() != nil {
					return false
				}
			}
		}
		keys, err := db.Keys()
		if err != nil || len(keys) != len(model) {
			return false
		}
		for _, k := range keys {
			if _, ok := model[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
