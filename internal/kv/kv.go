// Package kv implements a LevelDB-style log-structured-merge key-value
// store on top of the fsapi file systems: a write-ahead log, a skiplist
// memtable, sorted string tables, size-tiered leveled compaction, and a
// manifest for recovery. It is the substrate for the paper's LevelDB
// benchmark (§5.3): its workload is dominated by file data operations,
// which is exactly why ArckFS and ArckFS+ perform alike on it.
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"arckfs/internal/fsapi"
)

// Options tunes the store.
type Options struct {
	// Dir is the database directory (created if missing).
	Dir string
	// MemtableBytes triggers a flush when the memtable exceeds it.
	MemtableBytes int
	// L0Tables triggers a compaction of level 0 into level 1.
	L0Tables int
	// LevelRatio is the size multiplier between consecutive levels.
	LevelRatio int
	// MaxLevels bounds the tree depth.
	MaxLevels int
}

func (o *Options) fill() {
	if o.Dir == "" {
		o.Dir = "/db"
	}
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.L0Tables == 0 {
		o.L0Tables = 4
	}
	if o.LevelRatio == 0 {
		o.LevelRatio = 4
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 5
	}
}

// DB is one open store. It is safe for concurrent use; writes serialize
// on an internal mutex (as LevelDB's writer queue does), reads run
// concurrently against immutable tables.
type DB struct {
	fs   fsapi.FS
	opts Options

	mu      sync.RWMutex
	mem     *memtable
	wal     *wal
	levels  [][]*tableMeta // levels[0] newest-first; deeper levels sorted runs
	readers map[string]*tableReader
	nextNum int
	t       fsapi.Thread // internal maintenance thread
}

// Open creates or reopens a database in opts.Dir.
func Open(fs fsapi.FS, opts Options) (*DB, error) {
	opts.fill()
	db := &DB{
		fs:      fs,
		opts:    opts,
		mem:     newMemtable(),
		readers: map[string]*tableReader{},
		levels:  make([][]*tableMeta, opts.MaxLevels),
		t:       fs.NewThread(0),
	}
	if err := db.t.Mkdir(opts.Dir); err != nil && err != fsapi.ErrExist {
		return nil, err
	}
	if err := db.loadManifest(); err != nil {
		return nil, err
	}
	if err := db.replayWAL(); err != nil {
		return nil, err
	}
	w, err := openWAL(db.t, db.walPath())
	if err != nil {
		return nil, err
	}
	db.wal = w
	return db, nil
}

func (db *DB) walPath() string      { return db.opts.Dir + "/wal" }
func (db *DB) manifestPath() string { return db.opts.Dir + "/MANIFEST" }
func (db *DB) tablePath(n int) string {
	return fmt.Sprintf("%s/sst-%06d", db.opts.Dir, n)
}

// Put stores key → val.
func (db *DB) Put(key, val []byte) error {
	return db.write(key, val, false)
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	return db.write(key, nil, true)
}

func (db *DB) write(key, val []byte, del bool) error {
	if len(key) == 0 {
		return fmt.Errorf("kv: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.wal.append(key, val, del); err != nil {
		return err
	}
	db.mem.put(append([]byte(nil), key...), append([]byte(nil), val...), del)
	if db.mem.size >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// Get returns the value for key, or fsapi.ErrNotExist.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if val, del, ok := db.mem.get(key); ok {
		if del {
			return nil, fsapi.ErrNotExist
		}
		return append([]byte(nil), val...), nil
	}
	// L0 newest-first, then deeper levels.
	for lvl, tables := range db.levels {
		ordered := tables
		if lvl > 0 {
			// Non-overlapping: binary search by range.
			i := searchTables(tables, key)
			if i < 0 {
				continue
			}
			ordered = tables[i : i+1]
		}
		for _, meta := range ordered {
			r := db.readers[meta.file]
			if r == nil {
				continue
			}
			val, del, found, err := r.get(key)
			if err != nil {
				return nil, err
			}
			if found {
				if del {
					return nil, fsapi.ErrNotExist
				}
				return val, nil
			}
		}
	}
	return nil, fsapi.ErrNotExist
}

// searchTables finds the index of the non-overlapping table whose range
// contains key, or -1.
func searchTables(tables []*tableMeta, key []byte) int {
	lo, hi := 0, len(tables)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		m := tables[mid]
		switch {
		case bytes.Compare(key, m.smallest) < 0:
			hi = mid - 1
		case bytes.Compare(key, m.largest) > 0:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// Flush forces the memtable to a level-0 table.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.mem.entries == 0 {
		return nil
	}
	num := db.nextNum
	db.nextNum++
	meta, err := writeTable(db.t, db.tablePath(num), func(yield func(k, v []byte, del bool)) {
		db.mem.iter(func(k, v []byte, del bool) bool {
			yield(k, v, del)
			return true
		})
	})
	if err != nil {
		return err
	}
	r, err := openTable(db.t, meta)
	if err != nil {
		return err
	}
	db.readers[meta.file] = r
	db.levels[0] = append([]*tableMeta{meta}, db.levels[0]...)
	db.mem = newMemtable()
	// Truncate the WAL: its contents are now durable in the table.
	if err := db.wal.reset(); err != nil {
		return err
	}
	if err := db.writeManifestLocked(); err != nil {
		return err
	}
	return db.maybeCompactLocked()
}

// maybeCompactLocked merges L0 into L1 when L0 is full, and cascades
// size-triggered merges down the levels.
func (db *DB) maybeCompactLocked() error {
	if len(db.levels[0]) >= db.opts.L0Tables {
		if err := db.compactLocked(0); err != nil {
			return err
		}
	}
	limit := db.opts.L0Tables * db.opts.LevelRatio
	for lvl := 1; lvl < db.opts.MaxLevels-1; lvl++ {
		if len(db.levels[lvl]) > limit {
			if err := db.compactLocked(lvl); err != nil {
				return err
			}
		}
		limit *= db.opts.LevelRatio
	}
	return nil
}

// compactLocked merges every table of lvl with every table of lvl+1 into
// a fresh sorted run at lvl+1.
func (db *DB) compactLocked(lvl int) error {
	srcs := append(append([]*tableMeta{}, db.levels[lvl]...), db.levels[lvl+1]...)
	if len(srcs) == 0 {
		return nil
	}
	// Priority order: earlier in srcs wins (L0 is newest-first, and
	// shallower levels are newer than deeper ones).
	merged, err := db.mergeTables(srcs, lvl+1 == db.opts.MaxLevels-1)
	if err != nil {
		return err
	}
	// Install: new run replaces both levels; old tables removed.
	for _, meta := range srcs {
		if r := db.readers[meta.file]; r != nil {
			r.close()
			delete(db.readers, meta.file)
		}
		if err := db.t.Unlink(meta.file); err != nil && err != fsapi.ErrNotExist {
			return err
		}
	}
	db.levels[lvl] = nil
	db.levels[lvl+1] = merged
	return db.writeManifestLocked()
}

// mergeTables produces a sorted, deduplicated run from srcs (earlier
// tables take precedence). dropTombstones is set when merging into the
// bottom level.
func (db *DB) mergeTables(srcs []*tableMeta, dropTombstones bool) ([]*tableMeta, error) {
	type rec struct {
		val []byte
		del bool
	}
	// Materialized merge: newest-first insertion so older values never
	// overwrite newer ones. (LevelDB streams this; materializing is
	// equivalent for our scales and keeps the code auditable.)
	entries := map[string]rec{}
	for _, meta := range srcs {
		r := db.readers[meta.file]
		if r == nil {
			var err error
			r, err = openTable(db.t, meta)
			if err != nil {
				return nil, err
			}
			db.readers[meta.file] = r
		}
		err := r.scan(func(k, v []byte, del bool) bool {
			if _, seen := entries[string(k)]; !seen {
				entries[string(k)] = rec{val: append([]byte(nil), v...), del: del}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	keys := make([]string, 0, len(entries))
	for k := range entries {
		if dropTombstones && entries[k].del {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	num := db.nextNum
	db.nextNum++
	meta, err := writeTable(db.t, db.tablePath(num), func(yield func(k, v []byte, del bool)) {
		for _, k := range keys {
			e := entries[k]
			yield([]byte(k), e.val, e.del)
		}
	})
	if err != nil {
		return nil, err
	}
	r, err := openTable(db.t, meta)
	if err != nil {
		return nil, err
	}
	db.readers[meta.file] = r
	if meta.entries == 0 {
		// Everything compacted away.
		r.close()
		delete(db.readers, meta.file)
		db.t.Unlink(meta.file)
		return nil, nil
	}
	return []*tableMeta{meta}, nil
}

// --- Manifest ---------------------------------------------------------------

// Manifest format: nextNum u32, per level: count u32 then per table:
// fileLen u32, file, smallestLen u32, smallest, largestLen u32, largest,
// entries u32.
func (db *DB) writeManifestLocked() error {
	var buf bytes.Buffer
	var w [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:], v)
		buf.Write(w[:])
	}
	put32(uint32(db.nextNum))
	put32(uint32(len(db.levels)))
	for _, tables := range db.levels {
		put32(uint32(len(tables)))
		for _, m := range tables {
			put32(uint32(len(m.file)))
			buf.WriteString(m.file)
			put32(uint32(len(m.smallest)))
			buf.Write(m.smallest)
			put32(uint32(len(m.largest)))
			buf.Write(m.largest)
			put32(uint32(m.entries))
		}
	}
	tmp := db.manifestPath() + ".tmp"
	if err := db.t.Unlink(tmp); err != nil && err != fsapi.ErrNotExist {
		return err
	}
	if err := db.t.Create(tmp); err != nil {
		return err
	}
	fd, err := db.t.Open(tmp)
	if err != nil {
		return err
	}
	if _, err := db.t.WriteAt(fd, buf.Bytes(), 0); err != nil {
		db.t.Close(fd)
		return err
	}
	db.t.Fsync(fd)
	db.t.Close(fd)
	if err := db.t.Unlink(db.manifestPath()); err != nil && err != fsapi.ErrNotExist {
		return err
	}
	return db.t.Rename(tmp, db.manifestPath())
}

func (db *DB) loadManifest() error {
	st, err := db.t.Stat(db.manifestPath())
	if err == fsapi.ErrNotExist {
		return nil // fresh database
	}
	if err != nil {
		return err
	}
	fd, err := db.t.Open(db.manifestPath())
	if err != nil {
		return err
	}
	defer db.t.Close(fd)
	buf := make([]byte, st.Size)
	if _, err := db.t.ReadAt(fd, buf, 0); err != nil {
		return err
	}
	pos := 0
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(buf[pos:])
		pos += 4
		return v
	}
	db.nextNum = int(get32())
	nlevels := int(get32())
	for lvl := 0; lvl < nlevels && lvl < len(db.levels); lvl++ {
		n := int(get32())
		for i := 0; i < n; i++ {
			fl := int(get32())
			file := string(buf[pos : pos+fl])
			pos += fl
			sl := int(get32())
			smallest := append([]byte(nil), buf[pos:pos+sl]...)
			pos += sl
			ll := int(get32())
			largest := append([]byte(nil), buf[pos:pos+ll]...)
			pos += ll
			entries := int(get32())
			meta := &tableMeta{file: file, smallest: smallest, largest: largest, entries: entries}
			r, err := openTable(db.t, meta)
			if err != nil {
				return err
			}
			db.levels[lvl] = append(db.levels[lvl], meta)
			db.readers[meta.file] = r
		}
	}
	return nil
}

// Close flushes and releases the store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.flushLocked(); err != nil {
		return err
	}
	for _, r := range db.readers {
		r.close()
	}
	return nil
}

// Stats reports table counts per level (for tests and tuning).
func (db *DB) Stats() []int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]int, len(db.levels))
	for i, t := range db.levels {
		out[i] = len(t)
	}
	return out
}
