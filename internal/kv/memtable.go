package kv

import (
	"bytes"
	"math/rand"
)

// memtable is a skiplist-backed sorted in-memory buffer, the structure
// LevelDB uses. Tombstones are entries with nil values and del set.
type memtable struct {
	head    *skipNode
	maxLvl  int
	rng     *rand.Rand
	size    int // approximate bytes
	entries int
}

type skipNode struct {
	key  []byte
	val  []byte
	del  bool
	next []*skipNode
}

const skipMaxLevel = 12

func newMemtable() *memtable {
	return &memtable{
		head:   &skipNode{next: make([]*skipNode, skipMaxLevel)},
		maxLvl: 1,
		rng:    rand.New(rand.NewSource(42)),
	}
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < skipMaxLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or overwrites key.
func (m *memtable) put(key, val []byte, del bool) {
	update := make([]*skipNode, skipMaxLevel)
	x := m.head
	for i := m.maxLvl - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		m.size += len(val) - len(n.val)
		n.val = val
		n.del = del
		return
	}
	lvl := m.randomLevel()
	if lvl > m.maxLvl {
		for i := m.maxLvl; i < lvl; i++ {
			update[i] = m.head
		}
		m.maxLvl = lvl
	}
	n := &skipNode{key: key, val: val, del: del, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.size += len(key) + len(val) + 32
	m.entries++
}

// get returns (value, tombstone, found).
func (m *memtable) get(key []byte) ([]byte, bool, bool) {
	x := m.head
	for i := m.maxLvl - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		return n.val, n.del, true
	}
	return nil, false, false
}

// iter walks entries in key order.
func (m *memtable) iter(fn func(key, val []byte, del bool) bool) {
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		if !fn(n.key, n.val, n.del) {
			return
		}
	}
}

// first returns the smallest node (nil if empty), for merge iterators.
func (m *memtable) first() *skipNode { return m.head.next[0] }

// seek returns the first node with key >= target.
func (m *memtable) seek(target []byte) *skipNode {
	x := m.head
	for i := m.maxLvl - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, target) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}
