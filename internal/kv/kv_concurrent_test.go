package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"arckfs/internal/fsapi"
)

// TestConcurrentReadersOneWriter checks the LevelDB-style contract: one
// writer mutating while readers Get concurrently never yields a torn or
// phantom value.
func TestConcurrentReadersOneWriter(t *testing.T) {
	db, _ := newStore(t, Options{MemtableBytes: 8 << 10, L0Tables: 2})
	const keys = 100
	// Values are self-describing so readers can validate integrity.
	valFor := func(k, ver int) []byte {
		return []byte(fmt.Sprintf("key%04d-ver%06d", k, ver))
	}
	for k := 0; k < keys; k++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", k)), valFor(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make([]error, 4)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keys)
				got, err := db.Get([]byte(fmt.Sprintf("k%04d", k)))
				if err != nil {
					if errors.Is(err, fsapi.ErrNotExist) {
						continue // deleted by the writer; fine
					}
					errs[r] = err
					return
				}
				prefix := []byte(fmt.Sprintf("key%04d-ver", k))
				if !bytes.HasPrefix(got, prefix) {
					errs[r] = fmt.Errorf("torn value for k%04d: %q", k, got)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for i := 1; i <= 1500; i++ {
			k := rng.Intn(keys)
			key := []byte(fmt.Sprintf("k%04d", k))
			if rng.Intn(10) == 0 {
				if err := db.Delete(key); err != nil {
					errs[3] = err
					break
				}
			} else if err := db.Put(key, valFor(k, i)); err != nil {
				errs[3] = err
				break
			}
		}
		close(stop)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

func TestLargeValuesAcrossFlushes(t *testing.T) {
	db, _ := newStore(t, Options{MemtableBytes: 32 << 10, L0Tables: 2})
	blob := make([]byte, 10_000)
	for i := range blob {
		blob[i] = byte(i * 13)
	}
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("big%02d", i))
		v := append(append([]byte{}, blob...), byte(i))
		if err := db.Put(key, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		got, err := db.Get([]byte(fmt.Sprintf("big%02d", i)))
		if err != nil || len(got) != len(blob)+1 || got[len(got)-1] != byte(i) {
			t.Fatalf("big%02d: len=%d err=%v", i, len(got), err)
		}
	}
}

func TestDeepCompactionCascade(t *testing.T) {
	db, _ := newStore(t, Options{MemtableBytes: 2 << 10, L0Tables: 2, LevelRatio: 2, MaxLevels: 4})
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("c%05d", i%700)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	stats := db.Stats()
	deep := 0
	for lvl := 1; lvl < len(stats); lvl++ {
		deep += stats[lvl]
	}
	if deep == 0 {
		t.Fatalf("no deep-level tables after cascade: %v", stats)
	}
	// Spot-check newest-wins.
	got, err := db.Get([]byte("c00099"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2899" { // last write of key 99: i=2899
		t.Fatalf("c00099 = %q", got)
	}
}

func TestIteratorAfterReopen(t *testing.T) {
	sys := newStoreFS(t)
	db, err := Open(sys, Options{MemtableBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("it%03d", i)), []byte("x"))
	}
	db2, err := Open(sys, Options{MemtableBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := db2.Keys()
	if err != nil || len(keys) != 200 {
		t.Fatalf("keys after reopen: %d, %v", len(keys), err)
	}
}

func newStoreFS(t *testing.T) fsapi.FS {
	t.Helper()
	_, fs := newStore(t, Options{Dir: "/warmup"})
	return fs
}
