package kv

import (
	"encoding/binary"

	"arckfs/internal/fsapi"
)

// wal is the write-ahead log: every mutation is appended and synced
// before it enters the memtable. Record format:
//
//	[total u32][op u8][klen u32][vlen u32][key][value]
type wal struct {
	t    fsapi.Thread
	path string
	fd   fsapi.FD
	off  int64
}

func openWAL(t fsapi.Thread, path string) (*wal, error) {
	if err := t.Create(path); err != nil && err != fsapi.ErrExist {
		return nil, err
	}
	fd, err := t.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := t.Stat(path)
	if err != nil {
		return nil, err
	}
	return &wal{t: t, path: path, fd: fd, off: int64(st.Size)}, nil
}

func (w *wal) append(key, val []byte, del bool) error {
	total := 4 + 1 + 4 + 4 + len(key) + len(val)
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[0:], uint32(total))
	if del {
		buf[4] = 1
	}
	binary.LittleEndian.PutUint32(buf[5:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[9:], uint32(len(val)))
	copy(buf[13:], key)
	copy(buf[13+len(key):], val)
	if _, err := w.t.WriteAt(w.fd, buf, w.off); err != nil {
		return err
	}
	if err := w.t.Fsync(w.fd); err != nil {
		return err
	}
	w.off += int64(total)
	return nil
}

// reset truncates the log after a flush made its contents durable.
func (w *wal) reset() error {
	if err := w.t.Truncate(w.path, 0); err != nil {
		return err
	}
	w.off = 0
	return nil
}

// replayWAL applies surviving log records into the memtable at open.
func (db *DB) replayWAL() error {
	st, err := db.t.Stat(db.walPath())
	if err == fsapi.ErrNotExist {
		return nil
	}
	if err != nil {
		return err
	}
	if st.Size == 0 {
		return nil
	}
	fd, err := db.t.Open(db.walPath())
	if err != nil {
		return err
	}
	defer db.t.Close(fd)
	buf := make([]byte, st.Size)
	if _, err := db.t.ReadAt(fd, buf, 0); err != nil {
		return err
	}
	pos := 0
	for pos+13 <= len(buf) {
		total := int(binary.LittleEndian.Uint32(buf[pos:]))
		if total < 13 || pos+total > len(buf) {
			break // torn tail record: discard, as LevelDB does
		}
		del := buf[pos+4] == 1
		kl := int(binary.LittleEndian.Uint32(buf[pos+5:]))
		vl := int(binary.LittleEndian.Uint32(buf[pos+9:]))
		if 13+kl+vl != total {
			break
		}
		key := append([]byte(nil), buf[pos+13:pos+13+kl]...)
		val := append([]byte(nil), buf[pos+13+kl:pos+total]...)
		db.mem.put(key, val, del)
		pos += total
	}
	return nil
}
