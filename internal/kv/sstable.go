package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"arckfs/internal/fsapi"
)

// SSTable format (all little-endian):
//
//	entries:  [klen u32][vlen u32][key][value]...   (vlen 0xFFFFFFFF = tombstone)
//	index:    [klen u32][key][offset u64]...        (every indexStride-th entry)
//	footer:   indexOff u64 | indexCount u32 | entryCount u32 | smallest/largest key lens u32 u32 | magic u64
//
// The footer is fixed-size at the end of the file; smallest/largest keys
// directly precede it.
const (
	tombstoneLen = uint32(0xFFFFFFFF)
	indexStride  = 16
	ssMagic      = uint64(0x5353544142663031)
	footerSize   = 8 + 4 + 4 + 4 + 4 + 8
)

// tableMeta describes one on-FS table.
type tableMeta struct {
	file     string
	smallest []byte
	largest  []byte
	entries  int
}

// writeTable writes sorted entries to path via t and returns its meta.
// src must yield keys in strictly increasing order.
func writeTable(t fsapi.Thread, path string, src func(yield func(key, val []byte, del bool))) (*tableMeta, error) {
	if err := t.Create(path); err != nil {
		return nil, err
	}
	fd, err := t.Open(path)
	if err != nil {
		return nil, err
	}
	defer t.Close(fd)

	var buf bytes.Buffer
	var idx bytes.Buffer
	var smallest, largest []byte
	count := 0
	src(func(key, val []byte, del bool) {
		if count%indexStride == 0 {
			var kl [4]byte
			binary.LittleEndian.PutUint32(kl[:], uint32(len(key)))
			idx.Write(kl[:])
			idx.Write(key)
			var off [8]byte
			binary.LittleEndian.PutUint64(off[:], uint64(buf.Len()))
			idx.Write(off[:])
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(key)))
		vlen := uint32(len(val))
		if del {
			vlen = tombstoneLen
		}
		binary.LittleEndian.PutUint32(hdr[4:], vlen)
		buf.Write(hdr[:])
		buf.Write(key)
		if !del {
			buf.Write(val)
		}
		if smallest == nil {
			smallest = append([]byte(nil), key...)
		}
		largest = append(largest[:0], key...)
		count++
	})

	indexOff := buf.Len()
	indexCount := 0
	if count > 0 {
		indexCount = (count + indexStride - 1) / indexStride
	}
	buf.Write(idx.Bytes())
	// Trailer: smallest key, largest key, footer.
	buf.Write(smallest)
	buf.Write(largest)
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(indexOff))
	binary.LittleEndian.PutUint32(foot[8:], uint32(indexCount))
	binary.LittleEndian.PutUint32(foot[12:], uint32(count))
	binary.LittleEndian.PutUint32(foot[16:], uint32(len(smallest)))
	binary.LittleEndian.PutUint32(foot[20:], uint32(len(largest)))
	binary.LittleEndian.PutUint64(foot[24:], ssMagic)
	buf.Write(foot[:])

	if _, err := t.WriteAt(fd, buf.Bytes(), 0); err != nil {
		return nil, err
	}
	if err := t.Fsync(fd); err != nil {
		return nil, err
	}
	return &tableMeta{file: path, smallest: smallest, largest: largest, entries: count}, nil
}

// tableReader serves point lookups and scans from one table. It keeps
// the sparse index in memory, as LevelDB keeps index blocks cached.
type tableReader struct {
	t        fsapi.Thread
	fd       fsapi.FD
	meta     *tableMeta
	idxKeys  [][]byte
	idxOffs  []uint64
	dataSize int64
}

func openTable(t fsapi.Thread, meta *tableMeta) (*tableReader, error) {
	fd, err := t.Open(meta.file)
	if err != nil {
		return nil, err
	}
	st, err := t.Stat(meta.file)
	if err != nil {
		return nil, err
	}
	if st.Size < footerSize {
		return nil, fmt.Errorf("kv: table %s too short", meta.file)
	}
	foot := make([]byte, footerSize)
	if _, err := t.ReadAt(fd, foot, int64(st.Size)-footerSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(foot[24:]) != ssMagic {
		return nil, fmt.Errorf("kv: table %s bad magic", meta.file)
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	indexCount := int(binary.LittleEndian.Uint32(foot[8:]))
	smallLen := int64(binary.LittleEndian.Uint32(foot[16:]))
	largeLen := int64(binary.LittleEndian.Uint32(foot[20:]))
	idxLen := int64(st.Size) - footerSize - smallLen - largeLen - indexOff
	idxBuf := make([]byte, idxLen)
	if _, err := t.ReadAt(fd, idxBuf, indexOff); err != nil {
		return nil, err
	}
	r := &tableReader{t: t, fd: fd, meta: meta, dataSize: indexOff}
	pos := 0
	for i := 0; i < indexCount; i++ {
		if pos+4 > len(idxBuf) {
			return nil, fmt.Errorf("kv: table %s truncated index", meta.file)
		}
		kl := int(binary.LittleEndian.Uint32(idxBuf[pos:]))
		pos += 4
		key := append([]byte(nil), idxBuf[pos:pos+kl]...)
		pos += kl
		off := binary.LittleEndian.Uint64(idxBuf[pos:])
		pos += 8
		r.idxKeys = append(r.idxKeys, key)
		r.idxOffs = append(r.idxOffs, off)
	}
	return r, nil
}

func (r *tableReader) close() { r.t.Close(r.fd) }

// get performs a point lookup.
func (r *tableReader) get(key []byte) (val []byte, del, found bool, err error) {
	if len(r.idxKeys) == 0 {
		return nil, false, false, nil
	}
	if bytes.Compare(key, r.meta.smallest) < 0 || bytes.Compare(key, r.meta.largest) > 0 {
		return nil, false, false, nil
	}
	// Find the index block whose first key <= key.
	i := sort.Search(len(r.idxKeys), func(i int) bool {
		return bytes.Compare(r.idxKeys[i], key) > 0
	}) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	start := int64(r.idxOffs[i])
	end := r.dataSize
	if i+1 < len(r.idxOffs) {
		end = int64(r.idxOffs[i+1])
	}
	blk := make([]byte, end-start)
	if _, err := r.t.ReadAt(r.fd, blk, start); err != nil {
		return nil, false, false, err
	}
	pos := 0
	for pos+8 <= len(blk) {
		kl := int(binary.LittleEndian.Uint32(blk[pos:]))
		vl := binary.LittleEndian.Uint32(blk[pos+4:])
		pos += 8
		k := blk[pos : pos+kl]
		pos += kl
		tomb := vl == tombstoneLen
		var v []byte
		if !tomb {
			v = blk[pos : pos+int(vl)]
			pos += int(vl)
		}
		switch bytes.Compare(k, key) {
		case 0:
			if tomb {
				return nil, true, true, nil
			}
			return append([]byte(nil), v...), false, true, nil
		case 1:
			return nil, false, false, nil
		}
	}
	return nil, false, false, nil
}

// scan yields every entry in order.
func (r *tableReader) scan(fn func(key, val []byte, del bool) bool) error {
	data := make([]byte, r.dataSize)
	if _, err := r.t.ReadAt(r.fd, data, 0); err != nil {
		return err
	}
	pos := 0
	for pos+8 <= len(data) {
		kl := int(binary.LittleEndian.Uint32(data[pos:]))
		vl := binary.LittleEndian.Uint32(data[pos+4:])
		pos += 8
		key := data[pos : pos+kl]
		pos += kl
		tomb := vl == tombstoneLen
		var val []byte
		if !tomb {
			val = data[pos : pos+int(vl)]
			pos += int(vl)
		}
		if !fn(key, val, tomb) {
			return nil
		}
	}
	return nil
}
