package kv

import (
	"bytes"
	"container/heap"
	"sort"
)

// Iterator walks live keys in ascending order over a consistent view of
// the store (memtable + every table at creation time).
type Iterator struct {
	h       iterHeap
	current struct {
		key []byte
		val []byte
		ok  bool
	}
}

// source is one sorted input to the merge.
type source struct {
	prio int // lower wins ties (newer data)
	key  []byte
	val  []byte
	del  bool
	next func() bool // advances; false at exhaustion
}

type iterHeap []*source

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	if c := bytes.Compare(h[i].key, h[j].key); c != 0 {
		return c < 0
	}
	return h[i].prio < h[j].prio
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(*source)) }
func (h *iterHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h iterHeap) Peek() *source { return h[0] }

// NewIterator creates a merged iterator positioned before the first key.
func (db *DB) NewIterator() (*Iterator, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	it := &Iterator{}
	prio := 0

	// Memtable source.
	node := db.mem.first()
	if node != nil {
		s := &source{prio: prio}
		cur := node
		s.next = func() bool {
			if cur == nil {
				return false
			}
			s.key, s.val, s.del = cur.key, cur.val, cur.del
			cur = cur.next[0]
			return true
		}
		if s.next() {
			it.h = append(it.h, s)
		}
	}
	prio++

	// Table sources: materialize each table's entries (tables are
	// immutable; this snapshot stays consistent after the lock drops).
	for _, tables := range db.levels {
		for _, meta := range tables {
			r := db.readers[meta.file]
			if r == nil {
				continue
			}
			type ent struct {
				k, v []byte
				del  bool
			}
			var ents []ent
			if err := r.scan(func(k, v []byte, del bool) bool {
				ents = append(ents, ent{append([]byte(nil), k...), append([]byte(nil), v...), del})
				return true
			}); err != nil {
				return nil, err
			}
			if len(ents) == 0 {
				prio++
				continue
			}
			i := 0
			s := &source{prio: prio}
			s.next = func() bool {
				if i >= len(ents) {
					return false
				}
				s.key, s.val, s.del = ents[i].k, ents[i].v, ents[i].del
				i++
				return true
			}
			s.next()
			it.h = append(it.h, s)
			prio++
		}
	}
	heap.Init(&it.h)
	return it, nil
}

// Next advances to the next live key and reports whether one exists.
func (it *Iterator) Next() bool {
	var lastKey []byte
	for it.h.Len() > 0 {
		s := it.h.Peek()
		key := append([]byte(nil), s.key...)
		val := append([]byte(nil), s.val...)
		del := s.del
		if s.next() {
			heap.Fix(&it.h, 0)
		} else {
			heap.Pop(&it.h)
		}
		if lastKey != nil && bytes.Equal(key, lastKey) {
			continue // shadowed older version
		}
		lastKey = key
		// Skip older versions of this key still in the heap.
		for it.h.Len() > 0 && bytes.Equal(it.h.Peek().key, key) {
			shadow := it.h.Peek()
			if shadow.next() {
				heap.Fix(&it.h, 0)
			} else {
				heap.Pop(&it.h)
			}
		}
		if del {
			continue
		}
		it.current.key, it.current.val, it.current.ok = key, val, true
		return true
	}
	it.current.ok = false
	return false
}

// Key returns the current key (valid after Next reported true).
func (it *Iterator) Key() []byte { return it.current.key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.current.val }

// Keys collects every live key (tests and sanity checks).
func (db *DB) Keys() ([]string, error) {
	it, err := db.NewIterator()
	if err != nil {
		return nil, err
	}
	var keys []string
	for it.Next() {
		keys = append(keys, string(it.Key()))
	}
	sort.Strings(keys)
	return keys, nil
}
