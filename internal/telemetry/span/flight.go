package span

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

// DirEnv names the environment variable that overrides the flight-record
// artifact directory.
const DirEnv = "ARCK_FLIGHT_DIR"

// DefaultDir is where flight records land when DirEnv is unset.
const DefaultDir = "artifacts"

// ArtifactDir resolves the flight-record directory: dir if non-empty,
// else $ARCK_FLIGHT_DIR, else "artifacts".
func ArtifactDir(dir string) string {
	if dir != "" {
		return dir
	}
	if env := os.Getenv(DirEnv); env != "" {
		return env
	}
	return DefaultDir
}

// WriteArtifact serializes v as indented JSON to
// <ArtifactDir(dir)>/<name>.json, creating the directory as needed. The
// name is sanitized to a flat file name (path separators and other
// non-portable runes become '-'). It returns the path written.
//
// This is the single artifact writer shared by every breach-emitting
// tool (crashmc counterexamples, arckfsck reports, arckcrash breach
// artifacts), so all of them honor the same $ARCK_FLIGHT_DIR directory
// convention.
func WriteArtifact(dir, name string, v any) (string, error) {
	dir = ArtifactDir(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, name)
	path := filepath.Join(dir, name+".json")
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// WriteFile serializes the record via WriteArtifact.
func (fr *FlightRecord) WriteFile(dir, name string) (string, error) {
	return WriteArtifact(dir, name, fr)
}
