package span

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"arckfs/internal/fsapi"
	"arckfs/internal/telemetry"
)

// TestDisabledOverheadPin pins the disabled-tracing cost: Begin/End on a
// disabled tracer record nothing and (outside -race builds) allocate
// nothing.
func TestDisabledOverheadPin(t *testing.T) {
	tr := New(64, 64)
	l := tr.NewLocal()
	if raceEnabled {
		for i := 0; i < 1000; i++ {
			sp := l.Begin(fsapi.OpCreate, 1)
			sp.Event(telemetry.SpanEvFence, 0, 0)
			l.End(sp, nil)
		}
	} else {
		allocs := testing.AllocsPerRun(1000, func() {
			sp := l.Begin(fsapi.OpCreate, 1)
			sp.Event(telemetry.SpanEvFence, 0, 0)
			l.End(sp, nil)
		})
		if allocs != 0 {
			t.Fatalf("disabled Begin/End allocates %.1f objects per op, want 0", allocs)
		}
	}
	if got := tr.Recorded(); got != 0 {
		t.Fatalf("disabled tracer recorded %d spans, want 0", got)
	}
	if tr.Snapshot() != nil {
		t.Fatalf("disabled tracer retained spans")
	}
}

// TestSamplingOverheadPin pins the 1-in-64 policy: exactly ops/64 spans
// record, and the sampled-out path does not allocate.
func TestSamplingOverheadPin(t *testing.T) {
	tr := New(1024, 64)
	tr.SetEnabled(true)
	l := tr.NewLocal()
	const ops = 64 * 10
	for i := 0; i < ops; i++ {
		sp := l.Begin(fsapi.OpWrite, 7)
		sp.Event(telemetry.SpanEvFlush, 0, 1)
		l.End(sp, nil)
	}
	if got := tr.Recorded(); got != ops/64 {
		t.Fatalf("recorded %d spans over %d ops, want exactly %d", got, ops, ops/64)
	}
	if !raceEnabled {
		// AllocsPerRun's uncounted warm-up call lands on the sample
		// boundary (op 640); the 62 measured calls that follow all take
		// the sampled-out path, which must not allocate.
		allocs := testing.AllocsPerRun(62, func() {
			sp := l.Begin(fsapi.OpWrite, 7)
			sp.Event(telemetry.SpanEvFlush, 0, 1)
			l.End(sp, nil)
		})
		if allocs != 0 {
			t.Fatalf("sampled-out Begin/End allocates %.1f objects per op, want 0", allocs)
		}
	}
	for _, sp := range tr.Snapshot() {
		if sp.App != 7 || sp.Op != fsapi.OpWrite {
			t.Fatalf("span carries app=%d op=%v, want app=7 op=write", sp.App, sp.Op)
		}
		if sp.Count(telemetry.SpanEvFlush) != 1 {
			t.Fatalf("span lost its child event: %v", sp)
		}
	}
}

func TestSampleEveryOneRecordsEverything(t *testing.T) {
	tr := New(256, 1)
	tr.SetEnabled(true)
	l := tr.NewLocal()
	for i := 0; i < 100; i++ {
		l.End(l.Begin(fsapi.OpStat, 0), nil)
	}
	if got := tr.Recorded(); got != 100 {
		t.Fatalf("sample-every-1 recorded %d of 100", got)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(16, 1)
	tr.SetEnabled(true)
	l := tr.NewLocal()
	for i := 0; i < 100; i++ {
		l.End(l.Begin(fsapi.OpCreate, int64(i)), nil)
	}
	spans := tr.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	for _, sp := range spans {
		if sp.App < 84 {
			t.Fatalf("ring retained stale span app=%d, want >= 84", sp.App)
		}
	}
}

// TestConcurrentLocals exercises many locals recording in parallel while
// a reader snapshots, under the race detector in CI.
func TestConcurrentLocals(t *testing.T) {
	tr := New(32, 1)
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := tr.NewLocal()
			for i := 0; i < 500; i++ {
				sp := l.Begin(fsapi.OpWrite, int64(w))
				sp.Event(telemetry.SpanEvFence, int64(i), 0)
				l.End(sp, nil)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, sp := range tr.Snapshot() {
				_ = sp.DurNS
			}
		}
	}()
	wg.Wait()
	<-done
	if got := tr.Recorded(); got != 8*500 {
		t.Fatalf("recorded %d spans, want %d", got, 8*500)
	}
}

func TestSlowestAndErrors(t *testing.T) {
	tr := New(64, 1)
	tr.SetEnabled(true)
	l := tr.NewLocal()
	sp := l.Begin(fsapi.OpRename, 3)
	l.End(sp, errors.New("boom"))
	for i := 0; i < 5; i++ {
		l.End(l.Begin(fsapi.OpStat, 3), nil)
	}
	slow := tr.Slowest(2)
	if len(slow) != 2 {
		t.Fatalf("Slowest(2) returned %d spans", len(slow))
	}
	if slow[0].DurNS < slow[1].DurNS {
		t.Fatalf("Slowest not ordered by duration")
	}
	found := false
	for _, s := range tr.Snapshot() {
		if s.Err == "boom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("error outcome not retained")
	}
}

func TestFlightRecordJSON(t *testing.T) {
	tr := New(64, 1)
	tr.SetEnabled(true)
	l := tr.NewLocal()
	sp := l.Begin(fsapi.OpCreate, 2)
	sp.Event(telemetry.SpanEvFlush, 4096, 2)
	sp.Event(telemetry.SpanEvFence, 2, 0)
	sp.Event(telemetry.SpanEvCrossing, int64(telemetry.EvCommit), 1500)
	l.End(sp, nil)

	fr := tr.Flight("test-breach", "invariant I2")
	b, err := json.MarshalIndent(fr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{
		`"reason": "test-breach"`, `"op": "create"`,
		`"kind": "flush"`, `"kind": "fence"`, `"kind": "crossing"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("flight record JSON missing %s:\n%s", want, s)
		}
	}
}

// TestNilSafety: every method must no-op on nil receivers so call sites
// need no guards.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.SetEnabled(true)
	if tr.Enabled() || tr.Recorded() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer not inert")
	}
	var l *Local = tr.NewLocal()
	sp := l.Begin(fsapi.OpCreate, 0)
	sp.Event(telemetry.SpanEvFence, 0, 0)
	sp.SpanEvent(telemetry.SpanEvFence, 0, 0)
	if sp.Count(telemetry.SpanEvFence) != 0 {
		t.Fatal("nil span counted events")
	}
	l.End(sp, nil)
}

func BenchmarkBeginEndDisabled(b *testing.B) {
	tr := New(256, 64)
	l := tr.NewLocal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.End(l.Begin(fsapi.OpWrite, 1), nil)
	}
}

func BenchmarkBeginEndSampled(b *testing.B) {
	tr := New(256, 64)
	tr.SetEnabled(true)
	l := tr.NewLocal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := l.Begin(fsapi.OpWrite, 1)
		sp.Event(telemetry.SpanEvFlush, 0, 1)
		l.End(sp, nil)
	}
}
