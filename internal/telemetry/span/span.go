// Package span records causal per-operation spans. A span opens at a
// LibFS entry point (or at kernel mount for recovery), accumulates the
// child events the lower layers witness on that thread — kernel
// crossings, lease hits and misses, shard-lock waits, cache-line
// write-backs, streaming stores, fences — and closes with the
// operation's outcome and duration. Spans land in lock-free per-thread
// rings, so the most recent history is always available: the slowest
// spans explain a p99, and the full ring is the flight record a breach
// ships with.
//
// Cost discipline: when the tracer is disabled, Begin is one atomic load
// and allocates nothing; when enabled, only one operation in SampleEvery
// allocates a span (the rest pay one local counter increment). Both
// bounds are pinned by tests.
package span

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arckfs/internal/fsapi"
	"arckfs/internal/telemetry"
)

// Event is one child event inside a span.
type Event struct {
	// TNS is nanoseconds since the span started.
	TNS int64 `json:"t_ns"`
	// Kind is a telemetry.SpanEv* constant.
	Kind uint8 `json:"-"`
	// A and B are kind-specific payloads (see the SpanEv* docs).
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
}

// MarshalJSON renders the kind by name alongside the payloads.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event
	return json.Marshal(struct {
		Kind string `json:"kind"`
		alias
	}{Kind: telemetry.SpanEventName(e.Kind), alias: alias(e)})
}

func (e Event) String() string {
	return fmt.Sprintf("+%.3fµs %-13s a=%d b=%d",
		float64(e.TNS)/1e3, telemetry.SpanEventName(e.Kind), e.A, e.B)
}

// Span is one sampled operation: who ran what, how long it took, and the
// ordered low-level history it caused.
type Span struct {
	ID      uint64   `json:"id"`
	App     int64    `json:"app"`
	Op      fsapi.Op `json:"op"`
	StartNS int64    `json:"start_ns"` // since tracer creation
	DurNS   int64    `json:"dur_ns"`
	Err     string   `json:"err,omitempty"`
	Events  []Event  `json:"events,omitempty"`

	start time.Time
}

// Event appends a child event. Nil-safe so unsampled operations can call
// through unconditionally.
func (sp *Span) Event(kind uint8, a, b int64) {
	if sp == nil {
		return
	}
	sp.Events = append(sp.Events, Event{
		TNS:  time.Since(sp.start).Nanoseconds(),
		Kind: kind,
		A:    a,
		B:    b,
	})
}

// SpanEvent makes *Span a telemetry.SpanSink, so a span can be handed
// directly to producers (recovery) that speak only the sink interface.
func (sp *Span) SpanEvent(kind uint8, a, b int64) { sp.Event(kind, a, b) }

func (sp *Span) String() string {
	errs := ""
	if sp.Err != "" {
		errs = " err=" + sp.Err
	}
	return fmt.Sprintf("span #%d app=%d op=%s dur=%.3fµs events=%d%s",
		sp.ID, sp.App, sp.Op, float64(sp.DurNS)/1e3, len(sp.Events), errs)
}

// Count returns how many child events of kind the span holds.
func (sp *Span) Count(kind uint8) int {
	if sp == nil {
		return 0
	}
	n := 0
	for _, e := range sp.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Tracer owns the enable flag, the sampling policy, and the registry of
// per-thread rings. All methods are safe on a nil tracer.
type Tracer struct {
	enabled atomic.Bool
	mask    uint64 // sample when local counter & mask == 0
	ringCap int
	ids     atomic.Uint64
	nrec    atomic.Int64
	start   time.Time

	mu     sync.Mutex
	locals []*Local
}

// DefaultSampleEvery is the default sampling period: 1 in 64 operations.
const DefaultSampleEvery = 64

// DefaultRingCap is the default per-thread ring capacity.
const DefaultRingCap = 256

// New creates a tracer whose locals keep ringCap spans each and sample 1
// in sampleEvery operations (rounded up to a power of two; <=1 samples
// everything). The tracer starts disabled.
func New(ringCap, sampleEvery int) *Tracer {
	if ringCap < 16 {
		ringCap = DefaultRingCap
	}
	mask := uint64(0)
	if sampleEvery > 1 {
		p := 1
		for p < sampleEvery {
			p <<= 1
		}
		mask = uint64(p - 1)
	}
	return &Tracer{mask: mask, ringCap: ringCap, start: time.Now()}
}

// SetEnabled turns recording on or off. Spans already in the rings are
// kept.
func (tr *Tracer) SetEnabled(on bool) {
	if tr == nil {
		return
	}
	tr.enabled.Store(on)
}

// Enabled reports whether the tracer records.
func (tr *Tracer) Enabled() bool { return tr != nil && tr.enabled.Load() }

// Recorded returns how many spans were ever completed (the "span.recorded"
// gauge; benchmarks pin it at zero when tracing is off).
func (tr *Tracer) Recorded() int64 {
	if tr == nil {
		return 0
	}
	return tr.nrec.Load()
}

// NewLocal registers a per-thread recording ring. A Local must only be
// used from one goroutine at a time (snapshots may come from anywhere).
//
// The ring's slot array is allocated lazily, on the first span actually
// published: a thread that never records (tracing disabled, or nothing
// sampled) costs a few pointers, which is what keeps a 10k-tenant
// registry's tracing overhead near zero.
func (tr *Tracer) NewLocal() *Local {
	if tr == nil {
		return nil
	}
	l := &Local{tr: tr}
	tr.mu.Lock()
	tr.locals = append(tr.locals, l)
	tr.mu.Unlock()
	return l
}

// Release unregisters a local that never published a span, dropping it
// from the tracer's registry. Detaching threads call it so the registry
// tracks live threads, not every thread ever attached — without it a
// churn of short-lived tenants would grow the locals slice forever. A
// local that has recorded keeps its history and stays registered (its
// spans may still explain a later p99).
func (tr *Tracer) Release(l *Local) {
	if tr == nil || l == nil || l.ring.Load() != nil {
		return
	}
	tr.mu.Lock()
	for i, x := range tr.locals {
		if x == l {
			tr.locals = append(tr.locals[:i], tr.locals[i+1:]...)
			break
		}
	}
	tr.mu.Unlock()
}

// Snapshot returns every retained span across all locals, oldest first.
func (tr *Tracer) Snapshot() []*Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	locals := make([]*Local, len(tr.locals))
	copy(locals, tr.locals)
	tr.mu.Unlock()
	var out []*Span
	for _, l := range locals {
		rp := l.ring.Load()
		if rp == nil {
			continue
		}
		ring := *rp
		for i := range ring {
			if sp := ring[i].Load(); sp != nil {
				out = append(out, sp)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// Slowest returns up to n retained spans ordered by descending duration.
func (tr *Tracer) Slowest(n int) []*Span {
	spans := tr.Snapshot()
	sort.Slice(spans, func(i, j int) bool { return spans[i].DurNS > spans[j].DurNS })
	if n > 0 && len(spans) > n {
		spans = spans[:n]
	}
	return spans
}

// FlightRecord is the JSON artifact a breach ships with: the cause and
// the retained span history leading up to it.
type FlightRecord struct {
	Reason string  `json:"reason"`
	Detail string  `json:"detail,omitempty"`
	Spans  []*Span `json:"spans"`
}

// Flight captures the current retained history under a reason.
func (tr *Tracer) Flight(reason, detail string) *FlightRecord {
	return &FlightRecord{Reason: reason, Detail: detail, Spans: tr.Snapshot()}
}

// Local is one thread's recording ring. The slot array behind ring is
// allocated on first publish (see NewLocal); the pointer is atomic so
// snapshotters racing the first End observe either nil or a fully built
// ring.
type Local struct {
	tr   *Tracer
	ring atomic.Pointer[[]atomic.Pointer[Span]]
	seq  atomic.Uint64
	n    uint64 // sampling counter; owner-thread only
}

// Begin opens a span for op, or returns nil (a no-op span) when tracing
// is disabled or the operation is not sampled. The disabled path is one
// atomic load and does not allocate.
func (l *Local) Begin(op fsapi.Op, app int64) *Span {
	if l == nil || !l.tr.enabled.Load() {
		return nil
	}
	n := l.n
	l.n++
	if n&l.tr.mask != 0 {
		return nil
	}
	now := time.Now()
	return &Span{
		ID:      l.tr.ids.Add(1),
		App:     app,
		Op:      op,
		StartNS: now.Sub(l.tr.start).Nanoseconds(),
		start:   now,
	}
}

// End closes sp with the operation's outcome and publishes it to the
// ring. Nil-safe for unsampled operations.
func (l *Local) End(sp *Span, err error) {
	if l == nil || sp == nil {
		return
	}
	sp.DurNS = time.Since(sp.start).Nanoseconds()
	if err != nil {
		sp.Err = err.Error()
	}
	rp := l.ring.Load()
	if rp == nil {
		r := make([]atomic.Pointer[Span], l.tr.ringCap)
		l.ring.CompareAndSwap(nil, &r)
		rp = l.ring.Load()
	}
	ring := *rp
	seq := l.seq.Add(1) - 1
	ring[seq%uint64(len(ring))].Store(sp)
	l.tr.nrec.Add(1)
}
