//go:build !race

package span

// raceEnabled reports whether the race detector instruments this build.
// The allocation pins skip under -race: the race runtime may allocate on
// behalf of the measured code, which would fail the zero-alloc bound for
// reasons unrelated to the tracer.
const raceEnabled = false
