//go:build race

package span

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
