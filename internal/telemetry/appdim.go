package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// AppMetric indexes one per-application counter in an AppRow.
type AppMetric int

const (
	// AppOps: operations entered through the LibFS API.
	AppOps AppMetric = iota
	// AppSyscalls: kernel crossings charged to the app, counted by the
	// kernel so involuntary work (lease reclaims) is attributed too.
	AppSyscalls
	// AppFlushes: cache-line write-backs issued by the app's threads.
	AppFlushes
	// AppFences: ordering fences issued by the app's threads.
	AppFences
	// AppNTStores: non-temporal streaming stores by the app's threads.
	AppNTStores
	// AppAdmitQueued: kernel crossings that queued in the fair-share
	// admission scheduler instead of taking the fast path.
	AppAdmitQueued
	// AppAdmitWaitNS: total nanoseconds the app's crossings spent queued
	// for admission.
	AppAdmitWaitNS

	appMetricCount
)

var appMetricNames = [appMetricCount]string{
	AppOps:         "ops",
	AppSyscalls:    "syscalls",
	AppFlushes:     "flushes",
	AppFences:      "fences",
	AppNTStores:    "ntstores",
	AppAdmitQueued: "admit_queued",
	AppAdmitWaitNS: "admit_wait_ns",
}

// String returns the metric's snapshot key.
func (m AppMetric) String() string {
	if m >= 0 && m < appMetricCount {
		return appMetricNames[m]
	}
	return "app-metric(?)"
}

// AppRow holds one application's attribution counters plus an operation
// latency histogram (fed from sampled spans). All methods are safe on a
// nil row and from any goroutine.
//
// The histogram is allocated on first RecordLatency, not at row
// creation: a histogram is ~15 KiB of buckets, and an idle tenant's row
// must stay within a few hundred bytes for 10k-tenant registries.
type AppRow struct {
	counters [appMetricCount]atomic.Int64
	lat      atomic.Pointer[Histogram]
}

// Add increments metric by n.
func (r *AppRow) Add(m AppMetric, n int64) {
	if r == nil || m < 0 || m >= appMetricCount {
		return
	}
	r.counters[m].Add(n)
}

// Get reads metric.
func (r *AppRow) Get(m AppMetric) int64 {
	if r == nil || m < 0 || m >= appMetricCount {
		return 0
	}
	return r.counters[m].Load()
}

// Latency returns the row's op-latency histogram (nil until the first
// RecordLatency).
func (r *AppRow) Latency() *Histogram {
	if r == nil {
		return nil
	}
	return r.lat.Load()
}

// RecordLatency records one operation latency in nanoseconds, allocating
// the row's histogram on first use.
func (r *AppRow) RecordLatency(ns int64) {
	if r == nil {
		return
	}
	h := r.lat.Load()
	if h == nil {
		r.lat.CompareAndSwap(nil, NewHistogram())
		h = r.lat.Load()
	}
	h.Record(ns)
}

// AppStat is one application's attribution snapshot.
type AppStat struct {
	App         int64           `json:"app"`
	Ops         int64           `json:"ops"`
	Syscalls    int64           `json:"syscalls"`
	Flushes     int64           `json:"flushes"`
	Fences      int64           `json:"fences"`
	NTStores    int64           `json:"ntstores"`
	AdmitQueued int64           `json:"admit_queued,omitempty"`
	AdmitWaitNS int64           `json:"admit_wait_ns,omitempty"`
	Latency     *LatencySummary `json:"latency,omitempty"`
}

// AppDelta subtracts two attribution snapshots, returning after-before
// per app (apps absent from before count from zero; apps absent from
// after are dropped). Latency summaries are cumulative histograms and
// cannot be subtracted, so the after-side summary is carried through.
func AppDelta(before, after []AppStat) []AppStat {
	prev := make(map[int64]AppStat, len(before))
	for _, st := range before {
		prev[st.App] = st
	}
	out := make([]AppStat, 0, len(after))
	for _, st := range after {
		p := prev[st.App]
		st.Ops -= p.Ops
		st.Syscalls -= p.Syscalls
		st.Flushes -= p.Flushes
		st.Fences -= p.Fences
		st.NTStores -= p.NTStores
		st.AdmitQueued -= p.AdmitQueued
		st.AdmitWaitNS -= p.AdmitWaitNS
		out = append(out, st)
	}
	return out
}

// AppDim is the app-keyed dimension of the counter registry: one AppRow
// per application ID, created on first touch. The kernel charges
// crossings into it and each LibFS charges persist traffic, so a snapshot
// ranks tenants by the cost they impose on the shared substrate.
type AppDim struct {
	rows sync.Map // int64 -> *AppRow
}

// NewAppDim creates an empty dimension.
func NewAppDim() *AppDim { return &AppDim{} }

// Row returns (creating if needed) the row for app. Nil-safe: a nil
// dimension returns a nil row, whose methods are no-ops. App 0 is the
// unattributed sentinel — kernel-internal crossings (registration,
// force-release, trust-group edits) charge it — and never materializes
// a row, so the dimension's cardinality is exactly the live tenant set.
func (d *AppDim) Row(app int64) *AppRow {
	if d == nil || app == 0 {
		return nil
	}
	if v, ok := d.rows.Load(app); ok {
		return v.(*AppRow)
	}
	v, _ := d.rows.LoadOrStore(app, &AppRow{})
	return v.(*AppRow)
}

// Add increments app's metric by n.
func (d *AppDim) Add(app int64, m AppMetric, n int64) { d.Row(app).Add(m, n) }

// Evict drops app's row. Registries call it when a tenant departs so the
// dimension's footprint tracks the live tenant count, not every app ID
// ever registered. A racing writer that still holds the old row keeps
// charging into it harmlessly; the next Row(app) creates a fresh one.
func (d *AppDim) Evict(app int64) {
	if d == nil {
		return
	}
	d.rows.Delete(app)
}

// Snapshot returns every row's current counters, sorted by app ID.
func (d *AppDim) Snapshot() []AppStat {
	if d == nil {
		return nil
	}
	var out []AppStat
	d.rows.Range(func(k, v any) bool {
		r := v.(*AppRow)
		st := AppStat{
			App:         k.(int64),
			Ops:         r.Get(AppOps),
			Syscalls:    r.Get(AppSyscalls),
			Flushes:     r.Get(AppFlushes),
			Fences:      r.Get(AppFences),
			NTStores:    r.Get(AppNTStores),
			AdmitQueued: r.Get(AppAdmitQueued),
			AdmitWaitNS: r.Get(AppAdmitWaitNS),
		}
		if h := r.lat.Load(); h != nil {
			if s := h.Summary(); s.Count > 0 {
				st.Latency = &s
			}
		}
		out = append(out, st)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}
