package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketBoundaries checks that every bucket's bounds invert
// bucketIndex: each value maps into the bucket whose range contains it,
// bucket ranges tile the value space with no gaps or overlaps, and the
// relative bucket width never exceeds 1/histSubCount.
func TestBucketBoundaries(t *testing.T) {
	prevHigh := int64(-1)
	for i := 0; i < histBucketCount; i++ {
		low, high := BucketBounds(i)
		if low != prevHigh+1 {
			t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)", i, low, prevHigh+1)
		}
		if bucketIndex(low) != i || bucketIndex(high) != i {
			t.Fatalf("bucket %d [%d,%d]: index(low)=%d index(high)=%d",
				i, low, high, bucketIndex(low), bucketIndex(high))
		}
		if low >= histSubCount {
			if width := high - low + 1; float64(width)/float64(low) > 1.0/histSubCount+1e-12 {
				t.Fatalf("bucket %d [%d,%d]: relative width %g too coarse",
					i, low, high, float64(width)/float64(low))
			}
		}
		prevHigh = high
		if high >= math.MaxInt64/2 {
			break
		}
	}
	// Spot values across the whole range, including extremes.
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 1023, 4096, 1 << 20, 1 << 40, math.MaxInt64} {
		i := bucketIndex(v)
		low, high := BucketBounds(i)
		if v < low || v > high {
			t.Fatalf("value %d mapped to bucket %d [%d,%d]", v, i, low, high)
		}
	}
}

// TestQuantilesAgainstReference records random samples in both the
// histogram and a plain sorted slice and checks that every histogram
// quantile is within one bucket's relative error of the exact order
// statistic.
func TestQuantilesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	const n = 20000
	ref := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		// Log-uniform latencies between ~30ns and ~30ms, the realistic
		// range for the simulated operations.
		v := int64(math.Exp(rng.Float64()*13.8)) + 30
		h.Record(v)
		ref = append(ref, v)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	exact := func(q float64) int64 {
		r := int(math.Ceil(q * float64(n)))
		if r < 1 {
			r = 1
		}
		return ref[r-1]
	}
	for _, q := range []float64{0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0} {
		got, want := h.Quantile(q), exact(q)
		// The histogram answer is an upper bound of the exact order
		// statistic's bucket: allow one bucket width of slack.
		lo := float64(want)
		hi := float64(want) * (1 + 1.0/histSubCount)
		if float64(got) < lo-1 || float64(got) > hi+1 {
			t.Errorf("q=%v: histogram=%d exact=%d (allowed [%v,%v])", q, got, want, lo, hi)
		}
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if h.Max() != ref[n-1] || h.Min() != ref[0] {
		t.Fatalf("Max/Min = %d/%d, want %d/%d", h.Max(), h.Min(), ref[n-1], ref[0])
	}
	mean := 0.0
	for _, v := range ref {
		mean += float64(v)
	}
	mean /= n
	if math.Abs(h.Mean()-mean) > 1e-6 {
		t.Fatalf("Mean = %v, want %v", h.Mean(), mean)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read as zeros")
	}
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative clamp: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

// TestConcurrentRecording hammers one histogram from many goroutines
// (run under -race) and checks the aggregate is exact.
func TestConcurrentRecording(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(w)
	}
	// A concurrent reader, as the benchmark snapshot path does.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			h.Quantile(0.99)
			h.Summary()
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
}

// TestMergeMatchesSingle merges per-thread histograms and compares with
// one histogram fed every sample, the way the harness aggregates
// workers.
func TestMergeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := NewHistogram()
	merged := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < 9000; i++ {
		v := rng.Int63n(1 << 40)
		whole.Record(v)
		parts[i%3].Record(v)
	}
	for _, p := range parts {
		merged.Merge(p)
	}
	merged.Merge(nil)
	merged.Merge(NewHistogram()) // empty merge is a no-op
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Max() != whole.Max() || merged.Min() != whole.Min() {
		t.Fatalf("merge mismatch: %+v vs %+v", merged.Summary(), whole.Summary())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged=%d whole=%d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}
