package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Counter is a registered atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Set is an expvar-style counter registry: named int64 sources that a
// snapshot reads atomically enough for monitoring. It unifies counters
// owned by the Set itself with gauges reading external state (device
// statistics, kernel counters), so one snapshot covers the whole system.
type Set struct {
	mu       sync.Mutex
	sources  map[string]func() int64
	counters map[string]*Counter
}

// NewSet creates an empty registry.
func NewSet() *Set {
	return &Set{
		sources:  make(map[string]func() int64),
		counters: make(map[string]*Counter),
	}
}

// Gauge registers a named read-out. fn must be safe to call from any
// goroutine. Registering an existing name replaces it.
func (s *Set) Gauge(name string, fn func() int64) {
	s.mu.Lock()
	s.sources[name] = fn
	s.mu.Unlock()
}

// Counter registers (or returns the existing) counter under name.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{}
	s.counters[name] = c
	s.sources[name] = c.Load
	return c
}

// Snapshot reads every source. The result is a point-in-time view; with
// concurrent writers individual values are atomic but the set as a whole
// is not.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	fns := make(map[string]func() int64, len(s.sources))
	for name, fn := range s.sources {
		fns[name] = fn
	}
	s.mu.Unlock()
	out := make(map[string]int64, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// WriteJSON renders the snapshot as pretty-printed JSON (encoding/json
// sorts map keys, so the output is stable).
func (s *Set) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Delta returns after-before per key, keeping keys that exist in either
// snapshot (a key missing from one side counts as zero).
func Delta(before, after map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	for k, v := range before {
		if _, ok := after[k]; !ok {
			out[k] = -v
		}
	}
	return out
}
