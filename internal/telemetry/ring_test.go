package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Record(EvAcquire, int64(i), uint64(i), 0, 0)
	}
	if r.Total() != 40 {
		t.Fatalf("Total = %d", r.Total())
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("Snapshot holds %d events, want capacity 16", len(evs))
	}
	// The survivors are exactly the newest 16, oldest-first.
	for i, ev := range evs {
		if want := uint64(40 - 16 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if evs[0].Kind != EvAcquire || evs[0].App != int64(evs[0].Seq) {
		t.Fatalf("payload mangled: %+v", evs[0])
	}
}

func TestRingMinCapacityAndNil(t *testing.T) {
	r := NewRing(0)
	if r.Cap() < 16 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	var nilRing *Ring
	nilRing.Record(EvRelease, 1, 2, 3, 4) // must not panic
	if nilRing.Snapshot() != nil || nilRing.Total() != 0 || nilRing.Cap() != 0 {
		t.Fatal("nil ring must read empty")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(EvVerifyOK, int64(w), uint64(i), 1, 2)
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for i := 0; i < 200; i++ {
			for _, ev := range r.Snapshot() {
				_ = ev.String()
			}
		}
	}()
	wg.Wait()
	<-stop
	if r.Total() != 8000 {
		t.Fatalf("Total = %d", r.Total())
	}
	evs := r.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("len = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not ordered: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestRingWraparoundConcurrentWriters drives many writers through
// several full wraps of a small ring, then settles it with a quiescent
// pass. During the storm every observed event must be internally
// consistent (no torn payloads — each slot swap is one pointer store);
// after the settle pass the ring must hold exactly the newest window.
func TestRingWraparoundConcurrentWriters(t *testing.T) {
	const (
		capacity  = 32
		writers   = 16
		perWriter = 2000
	)
	r := NewRing(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Payload rule: Ino == uint64(A) + 1, B == A * 2. A torn
				// event would break it.
				a := int64(w*perWriter + i)
				r.Record(EvGrantPages, int64(w), uint64(a)+1, a, a*2)
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 500; i++ {
			for _, ev := range r.Snapshot() {
				if ev.Ino != uint64(ev.A)+1 || ev.B != ev.A*2 {
					t.Errorf("torn event observed mid-storm: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-readerDone
	if r.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*perWriter)
	}

	// Quiescent settle: one writer records a full window. With no
	// concurrent claims in flight, the survivors must be exactly these.
	base := r.Total()
	for i := 0; i < capacity; i++ {
		a := int64(1 << 40)
		r.Record(EvReturnPages, 99, uint64(a)+1, a, a*2)
	}
	evs := r.Snapshot()
	if len(evs) != capacity {
		t.Fatalf("settled ring holds %d events, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		if want := base + uint64(i); ev.Seq != want {
			t.Fatalf("settled event %d has seq %d, want %d", i, ev.Seq, want)
		}
		if ev.App != 99 || ev.Kind != EvReturnPages {
			t.Fatalf("settled ring retained stale event: %+v", ev)
		}
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Seq: 3, Nanos: 1500000, Kind: EvLeaseExpire, App: 2, Ino: 7}
	if s := ev.String(); !strings.Contains(s, "lease-expire") || !strings.Contains(s, "ino=7") {
		t.Fatalf("String() = %q", s)
	}
	if EventKind(200).String() == "" {
		t.Fatal("unknown kind must render")
	}
}
