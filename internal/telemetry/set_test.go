package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSetCountersAndGauges(t *testing.T) {
	s := NewSet()
	c := s.Counter("ops")
	c.Add(3)
	if again := s.Counter("ops"); again != c {
		t.Fatal("Counter must return the same instance per name")
	}
	var ext int64 = 41
	s.Gauge("ext", func() int64 { return ext })
	snap := s.Snapshot()
	if snap["ops"] != 3 || snap["ext"] != 41 {
		t.Fatalf("snapshot = %v", snap)
	}
	ext++
	c.Add(1)
	snap = s.Snapshot()
	if snap["ops"] != 4 || snap["ext"] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestSetWriteJSON(t *testing.T) {
	s := NewSet()
	s.Counter("b.two").Add(2)
	s.Counter("a.one").Add(1)
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]int64
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", sb.String(), err)
	}
	if got["a.one"] != 1 || got["b.two"] != 2 {
		t.Fatalf("roundtrip = %v", got)
	}
	if strings.Index(sb.String(), "a.one") > strings.Index(sb.String(), "b.two") {
		t.Fatalf("keys not sorted:\n%s", sb.String())
	}
}

func TestDelta(t *testing.T) {
	before := map[string]int64{"x": 10, "gone": 5}
	after := map[string]int64{"x": 25, "new": 7}
	d := Delta(before, after)
	if d["x"] != 15 || d["new"] != 7 || d["gone"] != -5 {
		t.Fatalf("delta = %v", d)
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Counter("shared").Add(1)
				s.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if s.Snapshot()["shared"] != 2000 {
		t.Fatalf("shared = %d", s.Snapshot()["shared"])
	}
}
