package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds. The A/B payload fields are kind-specific and
// documented per constant.
const (
	// EvAcquire: a LibFS acquired an inode. A = 1 for write intent.
	EvAcquire EventKind = iota + 1
	// EvRelease: an inode was returned to the kernel.
	EvRelease
	// EvCommit: an inode was verified in place (ownership retained).
	EvCommit
	// EvMap: the kernel mapped an inode's core state into a LibFS.
	EvMap
	// EvUnmap: the kernel tore a mapping down.
	EvUnmap
	// EvVerifyOK: a verification passed. A = dentry records scanned
	// (directories), B = pages walked.
	EvVerifyOK
	// EvVerifyFail: a verification failed and the corruption policy ran.
	EvVerifyFail
	// EvLeaseExpire: a holder's lease expired and the kernel reclaimed
	// the inode involuntarily. App is the expired holder.
	EvLeaseExpire
	// EvTrustTransfer: ownership moved inside a trust group without
	// verification (§5.4).
	EvTrustTransfer
	// EvRenameLockAcquire / EvRenameLockRelease: the global rename lease
	// (§4.6). On release, A = 0 if the lease had been stolen.
	EvRenameLockAcquire
	EvRenameLockRelease
	// EvCrashSnapshot: a crash image was materialized. A = crash policy.
	EvCrashSnapshot
	// EvGrantInodes / EvGrantPages: the kernel granted fresh inode
	// numbers / pages to an application. A = count requested.
	EvGrantInodes
	EvGrantPages
	// EvReturnPages: an application returned granted pages. A = count.
	EvReturnPages
	// EvSetACL: a per-app permission override was installed. A = perm.
	EvSetACL
	// EvUnregisterApp: an application identity was retired; held inodes
	// were force-released and granted resources reclaimed.
	EvUnregisterApp
	// EvSetQuota: an application's resource quota changed. A = max pages,
	// B = max inodes.
	EvSetQuota
)

var eventKindNames = map[EventKind]string{
	EvAcquire:           "acquire",
	EvRelease:           "release",
	EvCommit:            "commit",
	EvMap:               "map",
	EvUnmap:             "unmap",
	EvVerifyOK:          "verify-ok",
	EvVerifyFail:        "verify-fail",
	EvLeaseExpire:       "lease-expire",
	EvTrustTransfer:     "trust-transfer",
	EvRenameLockAcquire: "rename-lock-acquire",
	EvRenameLockRelease: "rename-lock-release",
	EvCrashSnapshot:     "crash-snapshot",
	EvGrantInodes:       "grant-inodes",
	EvGrantPages:        "grant-pages",
	EvReturnPages:       "return-pages",
	EvSetACL:            "set-acl",
	EvUnregisterApp:     "unregister-app",
	EvSetQuota:          "set-quota",
}

func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// MarshalJSON renders the kind by name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// Event is one structured trace record.
type Event struct {
	Seq   uint64    `json:"seq"`
	Nanos int64     `json:"t_ns"` // since ring creation
	Kind  EventKind `json:"kind"`
	App   int64     `json:"app,omitempty"`
	Ino   uint64    `json:"ino,omitempty"`
	A     int64     `json:"a,omitempty"`
	B     int64     `json:"b,omitempty"`
}

func (e Event) String() string {
	return fmt.Sprintf("#%d +%.3fms %-19s app=%d ino=%d a=%d b=%d",
		e.Seq, float64(e.Nanos)/1e6, e.Kind, e.App, e.Ino, e.A, e.B)
}

// Ring is a bounded trace buffer. Recording is one atomic sequence
// increment plus one pointer store, so it is cheap enough to stay
// enabled during benchmarks; when full it overwrites the oldest events.
// All methods are safe on a nil *Ring (they become no-ops), so call
// sites do not need to guard a disabled trace.
type Ring struct {
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64
	start time.Time
}

// NewRing creates a ring holding up to capacity events (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	return &Ring{slots: make([]atomic.Pointer[Event], capacity), start: time.Now()}
}

// Record appends one event.
func (r *Ring) Record(kind EventKind, app int64, ino uint64, a, b int64) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1) - 1
	ev := &Event{
		Seq:   seq,
		Nanos: time.Since(r.start).Nanoseconds(),
		Kind:  kind,
		App:   app,
		Ino:   ino,
		A:     a,
		B:     b,
	}
	r.slots[seq%uint64(len(r.slots))].Store(ev)
}

// Total returns how many events were ever recorded (including
// overwritten ones).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Snapshot returns the buffered events oldest-first. Under concurrent
// recording the snapshot is a best-effort consistent view.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
