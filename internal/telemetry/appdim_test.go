package telemetry

import (
	"testing"
)

func TestAppDimEvict(t *testing.T) {
	d := NewAppDim()
	d.Add(1, AppSyscalls, 3)
	d.Add(2, AppSyscalls, 5)
	if got := len(d.Snapshot()); got != 2 {
		t.Fatalf("snapshot has %d rows, want 2", got)
	}
	d.Evict(1)
	st := d.Snapshot()
	if len(st) != 1 || st[0].App != 2 {
		t.Fatalf("after evict: %+v", st)
	}
	// A fresh touch after eviction starts a new row from zero.
	d.Add(1, AppSyscalls, 1)
	st = d.Snapshot()
	if len(st) != 2 || st[0].Syscalls != 1 {
		t.Fatalf("re-registered row carried stale counts: %+v", st)
	}
}

func TestAppDimUnattributedSentinel(t *testing.T) {
	d := NewAppDim()
	d.Add(0, AppSyscalls, 7) // kernel-internal crossing: must not make a row
	if d.Row(0) != nil {
		t.Fatal("app 0 materialized a row")
	}
	if got := len(d.Snapshot()); got != 0 {
		t.Fatalf("snapshot has %d rows, want 0", got)
	}
}

// TestAppDimChurnCardinality registers and evicts 10k tenant IDs — the
// registry's lifecycle against the dimension — and checks cardinality
// tracks the live set, not every ID ever seen.
func TestAppDimChurnCardinality(t *testing.T) {
	d := NewAppDim()
	const cycles = 10000
	for id := int64(1); id <= cycles; id++ {
		d.Add(id, AppSyscalls, 1)
		d.Add(id, AppOps, 2)
		if id%3 == 0 {
			d.Row(id).RecordLatency(1000) // exercise the lazy histogram
		}
		d.Evict(id)
	}
	if got := len(d.Snapshot()); got != 0 {
		t.Fatalf("dimension holds %d rows after %d churn cycles", got, cycles)
	}
}

// TestAppDimChurnAllocs pins the steady-state allocation cost of a
// register/charge/evict cycle. A cycle allocates the row, its sync.Map
// entry, and interface boxing — small constants; what this test guards
// against is a regression that makes cost proportional to history (e.g.
// rows or histograms that survive eviction).
func TestAppDimChurnAllocs(t *testing.T) {
	d := NewAppDim()
	var id int64
	avg := testing.AllocsPerRun(10000, func() {
		id++
		d.Add(id, AppSyscalls, 1)
		d.Evict(id)
	})
	// Observed ~5 allocs/cycle; 16 leaves headroom for runtime changes
	// while still catching anything O(history).
	if avg > 16 {
		t.Fatalf("churn cycle costs %.1f allocs, want <= 16", avg)
	}
}

func BenchmarkAppDimChurn(b *testing.B) {
	d := NewAppDim()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := int64(i + 1)
		d.Add(id, AppSyscalls, 1)
		d.Evict(id)
	}
	if got := len(d.Snapshot()); got != 0 {
		b.Fatalf("dimension holds %d rows after churn", got)
	}
}

func BenchmarkAppDimHotRow(b *testing.B) {
	d := NewAppDim()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.Add(42, AppSyscalls, 1)
		}
	})
}
