// Package telemetry is the observability layer of the reproduction: it
// provides lock-free latency histograms, a bounded trace ring of
// structured events, and a counter registry with expvar-style JSON
// snapshots. The kernel, the LibFS, the verifier, and the simulated
// device all publish through it, and the benchmark harness consumes it
// to attach latency percentiles and per-operation counter deltas to
// every measurement cell.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucketing: values below histSubCount get exact unit buckets;
// above that, each power-of-two range is split into histSubCount
// log-linear sub-buckets, bounding the relative error of any recorded
// value by 1/histSubCount (~3%). This is the HDR-histogram scheme with a
// 5-bit significand.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// Highest index is reached at v = MaxInt64: exponent 62, shift 57.
	histBucketCount = 57*histSubCount + histSubCount*2
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	shift := exp - histSubBits
	return shift*histSubCount + int(v>>uint(shift))
}

// BucketBounds returns the inclusive value range [low, high] that bucket
// i covers (exported for the boundary tests).
func BucketBounds(i int) (low, high int64) {
	if i < histSubCount {
		return int64(i), int64(i)
	}
	shift := i/histSubCount - 1
	m := int64(i - shift*histSubCount)
	low = m << uint(shift)
	return low, low + 1<<uint(shift) - 1
}

// Histogram is a log-bucketed latency histogram. Recording is a single
// atomic add per value (plus max/min maintenance), so it is safe for
// concurrent use and cheap enough for per-operation recording;
// histograms from different threads merge losslessly.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
	// min stores -(value+1) so that 0 means "empty" and larger stored
	// values mean smaller observations.
	min     atomic.Int64
	buckets [histBucketCount]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one observation (negative values clamp to zero).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	e := -(v + 1)
	for {
		m := h.min.Load()
		if m != 0 && e <= m {
			break
		}
		if h.min.CompareAndSwap(m, e) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	m := h.min.Load()
	if m == 0 {
		return 0
	}
	return -m - 1
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) that is
// within one bucket width (≤ ~3% relative error) of the exact order
// statistic. Quantile(0.5) is the median; Quantile(1) equals Max.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBucketCount; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			_, high := BucketBounds(i)
			if m := h.max.Load(); high > m {
				// The bucket's upper bound can exceed the largest value
				// actually seen; never report beyond it.
				high = m
			}
			return high
		}
	}
	return h.max.Load()
}

// Merge adds other's observations into h. Concurrent recorders on either
// histogram are tolerated; the merge is atomic per bucket.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := 0; i < histBucketCount; i++ {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	if other.count.Load() == 0 {
		return
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		m, o := h.max.Load(), other.max.Load()
		if o <= m || h.max.CompareAndSwap(m, o) {
			break
		}
	}
	if e := other.min.Load(); e != 0 {
		for {
			m := h.min.Load()
			if m != 0 && e <= m {
				break
			}
			if h.min.CompareAndSwap(m, e) {
				break
			}
		}
	}
}

// LatencySummary is the JSON shape of a histogram: nanosecond
// percentiles plus count and mean.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// Summary snapshots the histogram's headline statistics.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanNS: h.Mean(),
		P50NS:  h.Quantile(0.50),
		P90NS:  h.Quantile(0.90),
		P99NS:  h.Quantile(0.99),
		MaxNS:  h.Max(),
	}
}
