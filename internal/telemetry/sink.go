package telemetry

import "fmt"

// SpanSink receives low-level child events for the operation span that is
// currently open on the calling thread. It is the wire between the layers
// that witness interesting moments (pmem's persist batcher, the kernel's
// shard locks, recovery) and the span recorder in telemetry/span — the
// producers emit through this two-method-free interface so they need not
// import the span package (or anything above them).
//
// Implementations must be cheap when no span is open: the LibFS thread
// sink is a nil-check and return. Producers hold a SpanSink for the
// duration of one operation only and never call it concurrently.
type SpanSink interface {
	// SpanEvent records one child event. kind is a SpanEv* constant; the
	// a/b payloads are kind-specific and documented per constant.
	SpanEvent(kind uint8, a, b int64)
}

// Span child-event kinds. Producers across pmem, kernel, and libfs share
// this one namespace so a span's event list reads as a single causal
// history.
const (
	// SpanEvFlush: cache-line write-backs queued. a = byte offset of the
	// first line, b = number of lines.
	SpanEvFlush uint8 = iota + 1
	// SpanEvNTStore: a non-temporal streaming store. a = byte offset,
	// b = length in bytes.
	SpanEvNTStore
	// SpanEvFence: an ordering-epoch boundary (sfence). a = unique lines
	// written back by the drain that preceded it.
	SpanEvFence
	// SpanEvCrossing: one kernel crossing completed. a = the trace
	// EventKind of the crossing (EvAcquire, EvCommit, ...), b = its
	// duration in nanoseconds.
	SpanEvCrossing
	// SpanEvLeaseHit: a kernel crossing was elided by a grant lease or a
	// dormant-mapping reactivation. a = inode (0 for page grants).
	SpanEvLeaseHit
	// SpanEvLeaseMiss: the lease fast path failed and the operation paid
	// the crossing. a = inode (0 for page grants).
	SpanEvLeaseMiss
	// SpanEvShardWait: a kernel shard lock was contended and the caller
	// blocked. a = shard index, b = wait in nanoseconds.
	SpanEvShardWait
	// SpanEvRecoveryPass: one mount-time recovery pass finished. a = pass
	// index (0-based, in Mount order), b = duration in nanoseconds.
	SpanEvRecoveryPass
	// SpanEvAdmitWait: the crossing queued in the fair-share admission
	// scheduler before being admitted. a = app id, b = wait in
	// nanoseconds.
	SpanEvAdmitWait
)

var spanEventNames = [...]string{
	SpanEvFlush:        "flush",
	SpanEvNTStore:      "ntstore",
	SpanEvFence:        "fence",
	SpanEvCrossing:     "crossing",
	SpanEvLeaseHit:     "lease-hit",
	SpanEvLeaseMiss:    "lease-miss",
	SpanEvShardWait:    "shard-wait",
	SpanEvRecoveryPass: "recovery-pass",
	SpanEvAdmitWait:    "admit-wait",
}

// SpanEventName returns the display name of a SpanEv* kind.
func SpanEventName(kind uint8) string {
	if int(kind) < len(spanEventNames) && spanEventNames[kind] != "" {
		return spanEventNames[kind]
	}
	return fmt.Sprintf("span-event(%d)", kind)
}
