// Command arckshell is an interactive shell onto a live ArckFS+ system —
// handy for exploring the architecture: every mutation runs in userspace,
// and `release` / `stats` make the kernel's verification work visible.
//
// Commands:
//
//	mkdir <path>              create a directory
//	create <path> [text]      create a file (optionally with contents)
//	write <path> <text>       overwrite a file's contents
//	cat <path>                print a file
//	ls <path>                 list a directory
//	stat <path>               show attributes
//	rm <path>                 unlink a file
//	rmdir <path>              remove an empty directory
//	mv <old> <new>            rename
//	trunc <path> <size>       truncate
//	release                   release everything to the kernel (verify)
//	fsck                      check the current image
//	crash                     simulate a power failure and remount
//	stats                     live telemetry snapshot (JSON, all counters)
//	shards                    per-shard kernel lock counters (contention)
//	trace [n] [filter...]     last n kernel-crossing events (default 16);
//	                          filters are kind-name substrings (acquire,
//	                          commit, grant, verify...) or app=<id>
//	spans [n]                 slowest recent operation spans (default 10)
//	                          with their causal event history
//	top                       per-app attribution: rank tenants by
//	                          crossings, persist traffic, and p99
//	tenants                   per-tenant quota/usage table: outstanding
//	                          page and inode grants against the limits
//	lint                      run the arcklint checkers over this source tree
//	crashmc [name]            run the crash-state model-checking campaign
//	                          (or just the configs whose name contains name)
//	help, quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"arckfs"
	"arckfs/internal/analysis"
	"arckfs/internal/crashmc"
	"arckfs/internal/telemetry"
)

func main() {
	// SpanSampling 1: the shell is interactive, so every operation gets a
	// causal span — `spans` then explains any slow command just typed.
	sys, err := arckfs.New(arckfs.Options{DevSize: 128 << 20, CrashTracking: true, SpanSampling: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	app := sys.NewApp()
	w := app.NewThread(0)
	fmt.Println("arckshell — ArckFS+ on a 128 MiB simulated PM device. 'help' for commands.")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("arckfs+ > ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		arg := func(i int) string {
			if i < len(args) {
				return args[i]
			}
			return ""
		}
		var err error
		switch cmd {
		case "help":
			fmt.Println("mkdir create write cat ls stat rm rmdir mv trunc release fsck crash stats shards trace spans top tenants lint crashmc quit")
		case "quit", "exit":
			return
		case "mkdir":
			err = w.Mkdir(arg(0))
		case "create":
			err = w.Create(arg(0))
			if err == nil && len(args) > 1 {
				err = writeAll(w, arg(0), strings.Join(args[1:], " "))
			}
		case "write":
			err = writeAll(w, arg(0), strings.Join(args[1:], " "))
		case "cat":
			var st arckfs.Stat
			st, err = w.Stat(arg(0))
			if err == nil {
				var fd arckfs.FD
				fd, err = w.Open(arg(0))
				if err == nil {
					buf := make([]byte, st.Size)
					_, err = w.ReadAt(fd, buf, 0)
					fmt.Printf("%s\n", buf)
					w.Close(fd)
				}
			}
		case "ls":
			path := arg(0)
			if path == "" {
				path = "/"
			}
			var names []string
			names, err = w.Readdir(path)
			for _, n := range names {
				fmt.Println(" ", n)
			}
		case "stat":
			var st arckfs.Stat
			st, err = w.Stat(arg(0))
			if err == nil {
				kind := "file"
				if st.Dir {
					kind = "dir"
				}
				fmt.Printf("  ino=%d type=%s size=%d nlink=%d\n", st.Ino, kind, st.Size, st.Nlink)
			}
		case "rm":
			err = w.Unlink(arg(0))
		case "rmdir":
			err = w.Rmdir(arg(0))
		case "mv":
			err = w.Rename(arg(0), arg(1))
		case "trunc":
			var n uint64
			n, err = strconv.ParseUint(arg(1), 10, 64)
			if err == nil {
				err = w.Truncate(arg(0), n)
			}
		case "release":
			err = app.ReleaseAll()
			if err == nil {
				st := sys.Stats()
				fmt.Printf("  verified; kernel has run %d verifications (%d failures, %d rollbacks)\n",
					st.Verifications, st.VerifyFailures, st.Rollbacks)
			}
		case "fsck":
			var rep *arckfs.Report
			rep, err = arckfs.Fsck(sys.Image())
			if err == nil {
				fmt.Println(" ", rep)
			}
		case "crash":
			if err = app.ReleaseAll(); err != nil {
				break
			}
			img := sys.CrashImage(arckfs.CrashDropAll)
			var rep *arckfs.Report
			sys, rep, err = arckfs.Recover(img, arckfs.Options{CrashTracking: true, SpanSampling: 1})
			if err != nil {
				break
			}
			// Re-enable tracking on the recovered system for further crashes.
			app = sys.NewApp()
			w = app.NewThread(0)
			fmt.Println("  power failed and remounted:", rep)
		case "stats":
			err = sys.Telemetry().WriteJSON(os.Stdout)
		case "shards":
			printShards(sys)
		case "lint":
			err = runLint()
		case "crashmc":
			err = runCrashmc(arg(0))
		case "trace":
			printTrace(sys, args)
		case "spans":
			n := 10
			if v, convErr := strconv.Atoi(arg(0)); convErr == nil && v > 0 {
				n = v
			}
			printSpans(sys, n)
		case "top":
			printTop(sys)
		case "tenants":
			printTenants(sys)
		default:
			fmt.Println("  unknown command; try 'help'")
		}
		if err != nil {
			fmt.Println("  error:", err)
		}
	}
}

// printTrace renders the tail of the kernel-crossing ring. args is an
// optional count followed by filters: kind-name substrings (any may
// match) and/or one app=<id>.
func printTrace(sys *arckfs.System, args []string) {
	n := 16
	rest := args
	if len(args) > 0 {
		if v, err := strconv.Atoi(args[0]); err == nil && v > 0 {
			n = v
			rest = args[1:]
		}
	}
	appFilter := int64(-1)
	var kinds []string
	for _, f := range rest {
		if after, ok := strings.CutPrefix(f, "app="); ok {
			if v, err := strconv.ParseInt(after, 10, 64); err == nil {
				appFilter = v
				continue
			}
		}
		kinds = append(kinds, strings.ToLower(f))
	}
	var out []telemetry.Event
	for _, ev := range sys.Trace().Snapshot() {
		if appFilter >= 0 && ev.App != appFilter {
			continue
		}
		if len(kinds) > 0 {
			match := false
			for _, k := range kinds {
				if strings.Contains(ev.Kind.String(), k) {
					match = true
				}
			}
			if !match {
				continue
			}
		}
		out = append(out, ev)
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	if len(out) == 0 {
		fmt.Println("  (no matching kernel crossings)")
	}
	for _, ev := range out {
		fmt.Println(" ", ev.String())
	}
}

// printSpans renders the slowest retained operation spans with their
// causal event history — the "why was that slow" view.
func printSpans(sys *arckfs.System, n int) {
	spans := sys.SlowestSpans(n)
	if len(spans) == 0 {
		fmt.Println("  (no spans recorded yet)")
		return
	}
	for _, sp := range spans {
		suffix := ""
		if sp.Err != "" {
			suffix = " err=" + sp.Err
		}
		fmt.Printf("  #%-4d %-8s app=%d %9.2fµs %d event(s)%s\n",
			sp.ID, sp.Op, sp.App, float64(sp.DurNS)/1e3, len(sp.Events), suffix)
		for _, ev := range sp.Events {
			detail := fmt.Sprintf("a=%d b=%d", ev.A, ev.B)
			if ev.Kind == telemetry.SpanEvCrossing {
				detail = fmt.Sprintf("%s %.2fµs", telemetry.EventKind(ev.A), float64(ev.B)/1e3)
			}
			fmt.Printf("        +%8.2fµs %-12s %s\n",
				float64(ev.TNS)/1e3, telemetry.SpanEventName(ev.Kind), detail)
		}
	}
}

// printTop renders the per-app attribution table, busiest tenants (by
// kernel crossings, then operations) first.
func printTop(sys *arckfs.System) {
	stats := sys.AppStats()
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Syscalls != stats[j].Syscalls {
			return stats[i].Syscalls > stats[j].Syscalls
		}
		return stats[i].Ops > stats[j].Ops
	})
	fmt.Printf("  %4s %8s %9s %8s %7s %9s %10s %10s\n",
		"app", "ops", "syscalls", "flushes", "fences", "ntstores", "p50", "p99")
	for _, st := range stats {
		p50, p99 := "-", "-"
		if st.Latency != nil {
			p50 = fmt.Sprintf("%.1fµs", float64(st.Latency.P50NS)/1e3)
			p99 = fmt.Sprintf("%.1fµs", float64(st.Latency.P99NS)/1e3)
		}
		fmt.Printf("  %4d %8d %9d %8d %7d %9d %10s %10s\n",
			st.App, st.Ops, st.Syscalls, st.Flushes, st.Fences, st.NTStores, p50, p99)
	}
	if len(stats) == 0 {
		fmt.Println("  (no application activity yet)")
	}
}

// printTenants renders the per-tenant quota/usage table: outstanding
// grants against the installed limits ("-" = unlimited).
func printTenants(sys *arckfs.System) {
	usage := sys.Usage()
	lim := func(v int64) string {
		if v <= 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	fmt.Printf("  %4s %10s %10s %10s %10s %10s %6s\n",
		"app", "pages out", "max pages", "inos out", "max inos", "cross/s", "weight")
	for _, u := range usage {
		fmt.Printf("  %4d %10d %10s %10d %10s %10s %6s\n",
			u.App, u.PagesOut, lim(u.Quota.MaxPages),
			u.InodesGranted, lim(u.Quota.MaxInodes),
			lim(u.Quota.CrossingsPerSec), lim(u.Quota.Weight))
	}
	if len(usage) == 0 {
		fmt.Println("  (no applications registered)")
	}
}

// printShards renders the kernel's per-shard lock counters, skipping
// shards never touched so the busy ones stand out.
func printShards(sys *arckfs.System) {
	fmt.Printf("  %-8s %5s %12s %10s\n", "kind", "idx", "acquisitions", "contended")
	var shown int
	for _, s := range sys.ShardStats() {
		if s.Acquisitions == 0 && s.Contended == 0 {
			continue
		}
		shown++
		fmt.Printf("  %-8s %5d %12d %10d\n", s.Kind, s.Index, s.Acquisitions, s.Contended)
	}
	if shown == 0 {
		fmt.Println("  (no kernel crossings yet)")
	}
}

// runLint runs the full arcklint suite in-process over the module this
// binary was started inside, mirroring `arcklint ./...`.
func runLint() error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, dirs, err := analysis.ExpandPatterns(cwd, []string{"./..."})
	if err != nil {
		return err
	}
	prog, err := analysis.LoadDirs(root, dirs)
	if err != nil {
		return err
	}
	findings := analysis.Run(prog, analysis.Analyzers())
	unsuppressed, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			continue
		}
		unsuppressed++
		fmt.Println(" ", f)
	}
	fmt.Printf("  %d finding(s), %d suppressed\n", unsuppressed, suppressed)
	return nil
}

// runCrashmc runs the crash-state model-checking campaign (or the
// subset whose names contain filter) on fresh scratch devices — the
// shell's own image is untouched.
func runCrashmc(filter string) error {
	ran := 0
	for _, cfg := range crashmc.Campaign() {
		if filter != "" && !strings.Contains(cfg.Name, filter) {
			continue
		}
		ran++
		res, err := crashmc.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Println(" ", res.Summary())
		for _, ce := range res.Counterexamples {
			fmt.Println("    counterexample:", ce)
		}
	}
	if ran == 0 {
		return fmt.Errorf("no campaign config matches %q", filter)
	}
	return nil
}

func writeAll(w arckfs.Thread, path, text string) error {
	fd, err := w.Open(path)
	if err != nil {
		return err
	}
	defer w.Close(fd)
	if err := w.Truncate(path, 0); err != nil {
		return err
	}
	_, err = w.WriteAt(fd, []byte(text), 0)
	return err
}
