// Command arckshell is an interactive shell onto a live ArckFS+ system —
// handy for exploring the architecture: every mutation runs in userspace,
// and `release` / `stats` make the kernel's verification work visible.
//
// Commands:
//
//	mkdir <path>              create a directory
//	create <path> [text]      create a file (optionally with contents)
//	write <path> <text>       overwrite a file's contents
//	cat <path>                print a file
//	ls <path>                 list a directory
//	stat <path>               show attributes
//	rm <path>                 unlink a file
//	rmdir <path>              remove an empty directory
//	mv <old> <new>            rename
//	trunc <path> <size>       truncate
//	release                   release everything to the kernel (verify)
//	fsck                      check the current image
//	crash                     simulate a power failure and remount
//	stats                     live telemetry snapshot (JSON, all counters)
//	shards                    per-shard kernel lock counters (contention)
//	trace [n]                 last n kernel-crossing events (default 16)
//	lint                      run the arcklint checkers over this source tree
//	crashmc [name]            run the crash-state model-checking campaign
//	                          (or just the configs whose name contains name)
//	help, quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"arckfs"
	"arckfs/internal/analysis"
	"arckfs/internal/crashmc"
)

func main() {
	sys, err := arckfs.New(arckfs.Options{DevSize: 128 << 20, CrashTracking: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	app := sys.NewApp()
	w := app.NewThread(0)
	fmt.Println("arckshell — ArckFS+ on a 128 MiB simulated PM device. 'help' for commands.")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("arckfs+ > ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		arg := func(i int) string {
			if i < len(args) {
				return args[i]
			}
			return ""
		}
		var err error
		switch cmd {
		case "help":
			fmt.Println("mkdir create write cat ls stat rm rmdir mv trunc release fsck crash stats shards trace lint crashmc quit")
		case "quit", "exit":
			return
		case "mkdir":
			err = w.Mkdir(arg(0))
		case "create":
			err = w.Create(arg(0))
			if err == nil && len(args) > 1 {
				err = writeAll(w, arg(0), strings.Join(args[1:], " "))
			}
		case "write":
			err = writeAll(w, arg(0), strings.Join(args[1:], " "))
		case "cat":
			var st arckfs.Stat
			st, err = w.Stat(arg(0))
			if err == nil {
				var fd arckfs.FD
				fd, err = w.Open(arg(0))
				if err == nil {
					buf := make([]byte, st.Size)
					_, err = w.ReadAt(fd, buf, 0)
					fmt.Printf("%s\n", buf)
					w.Close(fd)
				}
			}
		case "ls":
			path := arg(0)
			if path == "" {
				path = "/"
			}
			var names []string
			names, err = w.Readdir(path)
			for _, n := range names {
				fmt.Println(" ", n)
			}
		case "stat":
			var st arckfs.Stat
			st, err = w.Stat(arg(0))
			if err == nil {
				kind := "file"
				if st.Dir {
					kind = "dir"
				}
				fmt.Printf("  ino=%d type=%s size=%d nlink=%d\n", st.Ino, kind, st.Size, st.Nlink)
			}
		case "rm":
			err = w.Unlink(arg(0))
		case "rmdir":
			err = w.Rmdir(arg(0))
		case "mv":
			err = w.Rename(arg(0), arg(1))
		case "trunc":
			var n uint64
			n, err = strconv.ParseUint(arg(1), 10, 64)
			if err == nil {
				err = w.Truncate(arg(0), n)
			}
		case "release":
			err = app.ReleaseAll()
			if err == nil {
				st := sys.Stats()
				fmt.Printf("  verified; kernel has run %d verifications (%d failures, %d rollbacks)\n",
					st.Verifications, st.VerifyFailures, st.Rollbacks)
			}
		case "fsck":
			var rep *arckfs.Report
			rep, err = arckfs.Fsck(sys.Image())
			if err == nil {
				fmt.Println(" ", rep)
			}
		case "crash":
			if err = app.ReleaseAll(); err != nil {
				break
			}
			img := sys.CrashImage(arckfs.CrashDropAll)
			var rep *arckfs.Report
			sys, rep, err = arckfs.Recover(img, arckfs.Options{CrashTracking: true})
			if err != nil {
				break
			}
			// Re-enable tracking on the recovered system for further crashes.
			app = sys.NewApp()
			w = app.NewThread(0)
			fmt.Println("  power failed and remounted:", rep)
		case "stats":
			err = sys.Telemetry().WriteJSON(os.Stdout)
		case "shards":
			printShards(sys)
		case "lint":
			err = runLint()
		case "crashmc":
			err = runCrashmc(arg(0))
		case "trace":
			n := 16
			if v, convErr := strconv.Atoi(arg(0)); convErr == nil && v > 0 {
				n = v
			}
			evs := sys.Trace().Snapshot()
			if len(evs) > n {
				evs = evs[len(evs)-n:]
			}
			if len(evs) == 0 {
				fmt.Println("  (no kernel crossings yet)")
			}
			for _, ev := range evs {
				fmt.Println(" ", ev.String())
			}
		default:
			fmt.Println("  unknown command; try 'help'")
		}
		if err != nil {
			fmt.Println("  error:", err)
		}
	}
}

// printShards renders the kernel's per-shard lock counters, skipping
// shards never touched so the busy ones stand out.
func printShards(sys *arckfs.System) {
	fmt.Printf("  %-8s %5s %12s %10s\n", "kind", "idx", "acquisitions", "contended")
	var shown int
	for _, s := range sys.ShardStats() {
		if s.Acquisitions == 0 && s.Contended == 0 {
			continue
		}
		shown++
		fmt.Printf("  %-8s %5d %12d %10d\n", s.Kind, s.Index, s.Acquisitions, s.Contended)
	}
	if shown == 0 {
		fmt.Println("  (no kernel crossings yet)")
	}
}

// runLint runs the full arcklint suite in-process over the module this
// binary was started inside, mirroring `arcklint ./...`.
func runLint() error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, dirs, err := analysis.ExpandPatterns(cwd, []string{"./..."})
	if err != nil {
		return err
	}
	prog, err := analysis.LoadDirs(root, dirs)
	if err != nil {
		return err
	}
	findings := analysis.Run(prog, analysis.Analyzers())
	unsuppressed, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			continue
		}
		unsuppressed++
		fmt.Println(" ", f)
	}
	fmt.Printf("  %d finding(s), %d suppressed\n", unsuppressed, suppressed)
	return nil
}

// runCrashmc runs the crash-state model-checking campaign (or the
// subset whose names contain filter) on fresh scratch devices — the
// shell's own image is untouched.
func runCrashmc(filter string) error {
	ran := 0
	for _, cfg := range crashmc.Campaign() {
		if filter != "" && !strings.Contains(cfg.Name, filter) {
			continue
		}
		ran++
		res, err := crashmc.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Println(" ", res.Summary())
		for _, ce := range res.Counterexamples {
			fmt.Println("    counterexample:", ce)
		}
	}
	if ran == 0 {
		return fmt.Errorf("no campaign config matches %q", filter)
	}
	return nil
}

func writeAll(w arckfs.Thread, path, text string) error {
	fd, err := w.Open(path)
	if err != nil {
		return err
	}
	defer w.Close(fd)
	if err := w.Truncate(path, 0); err != nil {
		return err
	}
	_, err = w.WriteAt(fd, []byte(text), 0)
	return err
}
