// Command arckfsck checks (and optionally repairs) an ArckFS device
// image: it trusts the kernel's shadow inode table and reconciles every
// committed inode's core state against it, reporting torn §4.2 dentries,
// dangling entries from uncommitted creations, restorable inode records,
// and orphans.
//
// Usage:
//
//	arckfsck [-repair] [-deep] image.pm
//	arckfsck -demo
//
// With -demo, the tool builds a small file system in memory, injects the
// paper's §4.2 partial-persist crash, and shows the report.
//
// With -deep, the image is additionally run through the crashmc
// recovery invariants (internal/crashmc.CheckImage in model-free form):
// recovery must succeed, find no torn committed records, and converge
// in one repair pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"arckfs"
	"arckfs/internal/crashmc"
)

func main() {
	repair := flag.Bool("repair", false, "repair the image in place (writes the file back)")
	demo := flag.Bool("demo", false, "run a built-in crash-injection demonstration")
	deep := flag.Bool("deep", false, "also check the crashmc recovery invariants (I1, I2, I4)")
	flag.Parse()

	if *demo {
		runDemo()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: arckfsck [-repair] [-deep] image.pm | arckfsck -demo")
		os.Exit(2)
	}
	path := flag.Arg(0)
	img, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *deep {
		// CheckImage restores and repairs a scratch device, so -deep
		// composes with both the dry-run and -repair paths below.
		if vs := crashmc.CheckImage(img, nil); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintln(os.Stderr, "deep check:", v)
			}
			writeFlight(path, img, "arckfsck-deep", vs[0].String())
			os.Exit(1)
		}
		fmt.Println("deep check: recovery invariants hold")
	}
	if *repair {
		sys, rep, err := arckfs.Recover(img, arckfs.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("repaired:", rep)
		if err := os.WriteFile(path, sys.Image(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	rep, err := arckfs.Fsck(img)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(rep)
	if !rep.Clean() {
		writeFlight(path, img, "arckfsck", rep.String())
		os.Exit(1)
	}
}

// writeFlight dumps a flight record for a flagged image into the shared
// artifact directory ($ARCK_FLIGHT_DIR, default artifacts/) as
// <image-base>.flight.json: the image is re-mounted with every-operation
// span tracing, so the record carries the timed recovery passes of the
// repair attempt alongside the reason the image was flagged.
func writeFlight(imgPath string, img []byte, reason, detail string) {
	sys, _, err := arckfs.Recover(img, arckfs.Options{SpanSampling: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "flight record: recovery replay failed: %v\n", err)
		return
	}
	fr := sys.Tracer().Flight(reason, detail)
	out, err := fr.WriteFile("", filepath.Base(imgPath)+".flight")
	if err != nil {
		fmt.Fprintln(os.Stderr, "flight record:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "flight record: %s (%d spans)\n", out, len(fr.Spans))
}

func runDemo() {
	fmt.Println("Building a file system, then simulating a §4.2 crash during create...")
	sys, err := arckfs.New(arckfs.Options{DevSize: 64 << 20, CrashTracking: true, Mode: arckfs.ModeArckFS})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	app := sys.NewApp()
	w := app.NewThread(0)
	if err := w.Mkdir("/docs"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := w.Create("/docs/survivor"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := app.ReleaseAll(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// An in-flight create whose ordering is unprotected (ModeArckFS), cut
	// by a random-subset crash.
	if err := w.Create("/docs/in-flight-with-a-rather-long-name-spanning-cache-lines"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	img := sys.CrashImage(arckfs.CrashRandom(2))
	rep, err := arckfs.Fsck(img)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("fsck report:", rep)
	sys2, rep2, err := arckfs.Recover(img, arckfs.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("after repair:", rep2)
	w2 := sys2.NewApp().NewThread(0)
	names, err := w2.Readdir("/docs")
	fmt.Printf("surviving /docs entries: %v (err=%v)\n", names, err)
}
