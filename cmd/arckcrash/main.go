// Command arckcrash runs continuous randomized crash loops against any
// system configuration: seeded workloads, crashes at random fences and
// named whitebox killpoints, recovery, and verification against an
// incrementally-maintained expected-state oracle — with optional device
// lie modes (-faults) that drop flushes, break fences, or tear lines.
//
// Usage:
//
//	arckcrash [-iters N] [-seed S] [-ops N] [-configs a,b] [-artifacts dir] [-v]
//	arckcrash -system arck|nova|pmfs|kucofs [-bugs hex] [-faults modes] [-tenants N] ...
//	arckcrash -replay artifact.json
//	arckcrash -killpoints
//
// With no -system, the standard campaign (internal/crashloop.Campaign)
// runs: ArckFS+ and the baseline soak must stay clean, each buggy or
// lying config must breach its expected invariants. -configs filters
// the campaign by name. Every breach writes a replayable artifact into
// $ARCK_FLIGHT_DIR (default artifacts/); -replay re-runs one
// deterministically. Exit status 1 on any oracle mismatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"arckfs/internal/crashloop"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

func main() {
	iters := flag.Int("iters", 40, "iterations per configuration")
	seed := flag.Int64("seed", 1, "campaign seed (iteration seeds derive from it)")
	ops := flag.Int("ops", 48, "workload ops per iteration")
	configs := flag.String("configs", "", "comma-separated campaign config names (default: all)")
	system := flag.String("system", "", "ad-hoc mode: run one config against this system (arck, nova, pmfs, kucofs)")
	bugs := flag.Uint("bugs", 0, "ad-hoc mode: injected LibFS bug set (hex bitmask, arck only)")
	tenants := flag.Int("tenants", 0, "ad-hoc mode: run the workload round-robin across N LibFS tenants with ownership handoffs (arck only)")
	faults := flag.String("faults", "", "device lie modes: none, drop-flush, drop-fence, torn-line (comma mix)")
	artifacts := flag.String("artifacts", "", "breach artifact directory (default $ARCK_FLIGHT_DIR or artifacts/)")
	replay := flag.String("replay", "", "replay a breach artifact and exit")
	killpoints := flag.Bool("killpoints", false, "list whitebox killpoint sites and exit")
	verbose := flag.Bool("v", false, "print each breach as it is found")
	flag.Parse()

	if *killpoints {
		for _, s := range pmem.KillpointSites() {
			fmt.Println(s)
		}
		return
	}
	if *replay != "" {
		runReplay(*replay)
		return
	}

	var cfgs []crashloop.Config
	if *system != "" {
		fm, err := pmem.ParseFaultModes(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		name := *system
		if fm != pmem.FaultsNone {
			name += "+" + fm.String()
		}
		if *tenants > 1 {
			name += fmt.Sprintf("+t%d", *tenants)
		}
		cfgs = []crashloop.Config{{
			Name:    name,
			System:  *system,
			Bugs:    libfs.Bugs(*bugs),
			Faults:  fm,
			Tenants: *tenants,
		}}
	} else {
		cfgs = crashloop.Campaign()
		if *configs != "" {
			want := map[string]bool{}
			for _, n := range strings.Split(*configs, ",") {
				want[strings.TrimSpace(n)] = true
			}
			var filtered []crashloop.Config
			for _, c := range cfgs {
				if want[c.Name] {
					filtered = append(filtered, c)
					delete(want, c.Name)
				}
			}
			if len(want) > 0 {
				fmt.Fprintf(os.Stderr, "unknown config(s): %v\n", keys(want))
				os.Exit(2)
			}
			cfgs = filtered
		}
		if *faults != "" {
			fmt.Fprintln(os.Stderr, "-faults requires -system (campaign configs fix their own fault modes)")
			os.Exit(2)
		}
	}

	fail := false
	for _, cfg := range cfgs {
		cfg.Iters = *iters
		cfg.Seed = *seed
		cfg.OpsPerIter = *ops
		cfg.ArtifactDir = *artifacts
		if *verbose {
			cfg.Log = os.Stderr
		}
		res, err := crashloop.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res.Summary())
		if !*verbose {
			for _, b := range res.Breaches {
				if b.Artifact != "" {
					fmt.Printf("  breach artifact: %s\n", b.Artifact)
				}
			}
		}
		if !res.OK() {
			fail = true
		}
	}
	if fail {
		fmt.Println("ORACLE MISS: at least one configuration did not match its expected outcome")
		os.Exit(1)
	}
}

func runReplay(path string) {
	b, err := crashloop.LoadBreach(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("replaying %s\n", b)
	out, err := crashloop.Replay(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, rb := range out.Breaches {
		fmt.Printf("  found %s: %s (%s)\n", rb.Invariant, rb.Detail, rb.Crash)
	}
	if !out.Reproduced {
		fmt.Println("NOT REPRODUCED: replay did not re-find the artifact's breach")
		os.Exit(1)
	}
	fmt.Println("reproduced")
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
