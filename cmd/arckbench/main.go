// Command arckbench regenerates the tables and figures of the ArckFS+
// paper's evaluation against this repository's implementations.
//
// Usage:
//
//	arckbench -exp figure3|figure4|table2|dataScale|fxmark|filebench|leveldb|table4|crashmc|all \
//	          [-threads 1,2,4,8,16,32,64] [-ops 20000] [-dev 512] [-fast] \
//	          [-systems arckfs,arckfs+,nova,pmfs,kucofs] [-persist batched|eager] \
//	          [-serial-kernel] [-serial-data] [-json out.json] [-sha <commit>] [-timestamp <rfc3339>]
//
// -json writes a machine-readable run record alongside the rendered
// tables: provenance (git commit, wall time, deterministic config
// hash), configuration, then one cell per measurement with ops/sec,
// sampled latency percentiles (p50/p90/p99/max), telemetry counter
// deltas (flushes, fences, ntstores, syscalls — absolute and per-op),
// and the per-app attribution delta. -sha and -timestamp override the
// recorded provenance (defaults: $GITHUB_SHA and the wall clock, both
// read outside any measured region) — benchcheck -record keys the perf
// trajectory on them.
//
// -persist eager disables the LibFS write-combining persist batcher;
// pairing a batched and an eager run of the same experiment quantifies
// the batching optimization (see EXPERIMENTS.md).
//
// -serial-kernel reverts the ArckFS control plane to one exclusive lock
// per kernel crossing with no grant leases; pairing it with a default
// run quantifies the sharded control plane (see EXPERIMENTS.md). The
// fxmark experiment additionally runs the MWRA release/reopen workload,
// whose per-op syscalls and syscalls_avoided deltas expose the lease
// hit rate directly.
//
// -serial-data reverts the ArckFS data plane to its locked read paths
// (bucket locks on directory lookups, per-inode reader-writer locks on
// file reads); pairing it with a default run quantifies the RCU
// lock-free read paths (see EXPERIMENTS.md). The fxmark MRSL workload —
// shared-directory open/stat/read — is the read-mostly cell built for
// that comparison, and its per-op read_locks delta pins the lock-free
// path at zero bucket-lock acquisitions.
//
// -faults attaches a seeded device lie plan to the ArckFS systems
// (dropped flushes, lying fences, torn lines — see internal/pmem
// FaultMode). Lies change only which crash states are reachable, never
// what reads observe, so a -faults sweep should match the honest run's
// throughput; the pmem.lies.* counters in the -json output record how
// often the device lied. Crash-consistency under the same lies is
// cmd/arckcrash's job.
//
// -exp crashmc runs the crash-state model-checking campaign instead of
// a benchmark (not part of "all"); the process exits non-zero on any
// oracle mismatch, which is how CI uses it as a smoke gate.
//
// -exp tenants runs the multi-tenant serving ablation (not part of
// "all"): the tenant-scaling sweep over -tenants population sizes (k
// suffix allowed: "16,128,1k,4k,10k"), the measured idle-tenant
// footprint, and the revocation storm (-storm-tenants /
// -storm-migrations). -max-inflight sizes the crossing admission
// scheduler; -serial-admission collapses it to one FIFO and -flat-epoch
// reverts the kernel epoch lock to a single shared counter — the two
// before/after baselines EXPERIMENTS.md charts.
//
// Table 1 (the six bugs and their fixes) is reproduced by the test
// suite: go test ./internal/libfs -run TestBug -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"

	"arckfs/internal/bench/experiments"
	"arckfs/internal/pmem"
)

func main() {
	exp := flag.String("exp", "all", "experiment: figure3, figure4, table2, dataScale, fxmark, filebench, leveldb, table4, crashmc, all")
	threads := flag.String("threads", "1,2,4,8,16,32,64", "comma-separated thread sweep")
	ops := flag.Int("ops", 20000, "total operations per measurement cell")
	dev := flag.Int64("dev", 512, "device size in MiB per instance")
	fast := flag.Bool("fast", false, "disable the calibrated cost model (unit-test speed)")
	systems := flag.String("systems", strings.Join(experiments.AllSystems, ","), "file systems to measure")
	smallMB := flag.Uint64("share-small", 2, "Table 4 small shared-file size (MiB)")
	bigMB := flag.Uint64("share-big", 256, "Table 4 big shared-file size (MiB; paper uses 1024)")
	trials := flag.Int("trials", 3, "best-of-N trials for single-thread cells")
	jsonOut := flag.String("json", "", "write a machine-readable run record to this path")
	sha := flag.String("sha", os.Getenv("GITHUB_SHA"), "git commit recorded in the run record (provenance only)")
	timestamp := flag.String("timestamp", "", "RFC3339 wall time recorded in the run record (default: now, read outside any measured region)")
	persist := flag.String("persist", "batched", "ArckFS persist schedule: batched or eager")
	serial := flag.Bool("serial-kernel", false, "run the ArckFS kernels single-locked and lease-free (control-plane A/B baseline)")
	serialData := flag.Bool("serial-data", false, "run the ArckFS data plane with locked read paths (data-plane A/B baseline)")
	faults := flag.String("faults", "", "device lie modes for the ArckFS systems: drop-flush, drop-fence, torn-line (comma mix; throughput should be unaffected)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the device lie plan")
	tenants := flag.String("tenants", "16,128,1k", "tenant population sweep for -exp tenants (k suffix = x1000)")
	stormTenants := flag.Int("storm-tenants", 256, "revocation-storm tenant count for -exp tenants")
	stormMigrations := flag.Int("storm-migrations", 0, "revocation-storm migration count (default 4x tenants)")
	maxInflight := flag.Int("max-inflight", 0, "admission-scheduler slot count (0 = off; -exp tenants defaults to 4)")
	serialAdmission := flag.Bool("serial-admission", false, "collapse the admission scheduler to one FIFO (fair-share A/B baseline)")
	flatEpoch := flag.Bool("flat-epoch", false, "run the kernel epoch lock as a single shared counter (big-reader-lock A/B baseline)")
	flag.Parse()

	if *persist != "batched" && *persist != "eager" {
		fmt.Fprintf(os.Stderr, "bad -persist %q (want batched or eager)\n", *persist)
		os.Exit(2)
	}
	faultModes, err := pmem.ParseFaultModes(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *exp != "all" && !isKnown(*exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want figure3, figure4, table2, dataScale, fxmark, filebench, leveldb, table4, crashmc, tenants, or all)\n", *exp)
		os.Exit(2)
	}
	tenantCounts, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// GC pauses are the dominant noise source on a small host; the
	// working sets here are bounded, so trade memory for stable numbers.
	debug.SetGCPercent(400)

	var ths []int
	for _, s := range strings.Split(*threads, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", s)
			os.Exit(2)
		}
		ths = append(ths, v)
	}
	cfg := experiments.Config{
		Systems:    strings.Split(*systems, ","),
		Threads:    ths,
		TotalOps:   *ops,
		DevSize:    *dev << 20,
		Realistic:  !*fast,
		Trials:     *trials,
		Eager:      *persist == "eager",
		Serial:     *serial,
		SerialData: *serialData,
		Faults:     faultModes,
		FaultSeed:  *faultSeed,
		Out:        os.Stdout,
	}
	if *exp == "tenants" {
		cfg.TenantCounts = tenantCounts
		cfg.StormTenants = *stormTenants
		cfg.StormMigrations = *stormMigrations
		cfg.MaxInflight = *maxInflight
		cfg.SerialAdmission = *serialAdmission
		cfg.FlatEpoch = *flatEpoch
	}
	if *jsonOut != "" {
		cfg.Rec = experiments.NewRecorder(cfg)
		cfg.Rec.SetProvenance(*sha, *timestamp)
	}

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("figure3") {
		run("figure3", func() error { return experiments.Figure3(cfg) })
	}
	if want("figure4") || want("table2") {
		run("figure4+table2", func() error {
			series, err := experiments.Figure4(cfg)
			if err != nil {
				return err
			}
			return experiments.Table2(cfg, series)
		})
	}
	// fxmark is not part of "all": it re-covers figure4 and dataScale
	// cells and exists for targeted persistence-cost comparisons.
	if *exp == "fxmark" {
		run("fxmark", func() error { return experiments.Fxmark(cfg) })
	}
	// crashmc is not part of "all" either: it is a correctness campaign,
	// not a performance experiment — CI runs it as its own smoke job and
	// fails on any oracle mismatch.
	if *exp == "crashmc" {
		run("crashmc", func() error { return experiments.Crashmc(cfg) })
	}
	// tenants is not part of "all": it measures the multi-tenant serving
	// path (ArckFS+-only), not a paper figure, and 10k-population sweeps
	// deserve their own invocation.
	if *exp == "tenants" {
		run("tenants", func() error { return experiments.Tenants(cfg) })
	}
	if want("dataScale") {
		run("dataScale", func() error { return experiments.DataScale(cfg) })
	}
	if want("filebench") {
		run("filebench", func() error { return experiments.Filebench(cfg) })
	}
	if want("leveldb") {
		run("leveldb", func() error { return experiments.LevelDB(cfg) })
	}
	if want("table4") {
		run("table4", func() error {
			return experiments.Table4(cfg, *smallMB<<20, *bigMB<<20, 400, 20)
		})
	}
	if cfg.Rec != nil {
		if err := cfg.Rec.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

func isKnown(e string) bool {
	switch e {
	case "figure3", "figure4", "table2", "dataScale", "fxmark", "filebench", "leveldb", "table4", "crashmc", "tenants":
		return true
	}
	return false
}

// parseTenants parses a population sweep like "16,128,1k,4k,10k".
func parseTenants(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		mult := 1
		if n := strings.TrimSuffix(strings.ToLower(part), "k"); n != part {
			mult, part = 1000, n
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad tenant count %q", part)
		}
		out = append(out, v*mult)
	}
	return out, nil
}
