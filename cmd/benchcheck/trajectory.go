package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"arckfs/internal/bench/experiments"
)

// TrajectoryRow is one checked-in measurement: a (workload, fs,
// threads) cell from one arckbench run, keyed by the configuration
// hash so only like-for-like runs are compared, and stamped with the
// commit and date it was recorded under.
type TrajectoryRow struct {
	GitSHA     string  `json:"git_sha,omitempty"`
	Timestamp  string  `json:"timestamp,omitempty"`
	ConfigHash string  `json:"config_hash"`
	Workload   string  `json:"workload"`
	FS         string  `json:"fs"`
	Threads    int     `json:"threads"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P99NS      int64   `json:"p99_ns,omitempty"`
}

// TrajectoryFile is the checked-in perf history (BENCH_trajectory.json):
// append-only rows, oldest first.
type TrajectoryFile struct {
	Comment string          `json:"comment,omitempty"`
	Rows    []TrajectoryRow `json:"rows"`
}

// key identifies the series a row belongs to.
func (r TrajectoryRow) key() string {
	return fmt.Sprintf("%s|%s|%d|%s", r.Workload, r.FS, r.Threads, r.ConfigHash)
}

// cellRow converts one run-record cell into a trajectory row.
func cellRow(rec experiments.RunRecord, c experiments.Cell) TrajectoryRow {
	row := TrajectoryRow{
		GitSHA:     rec.GitSHA,
		Timestamp:  rec.Timestamp,
		ConfigHash: rec.ConfigHash,
		Workload:   c.Workload,
		FS:         c.FS,
		Threads:    c.Threads,
		OpsPerSec:  c.OpsPerSec,
	}
	if c.Latency != nil {
		row.P99NS = c.Latency.P99NS
	}
	return row
}

// checkTrajectory gates the new records against the checked-in history
// and appends them: for every new row whose series already has rows,
// throughput must stay within tolerance of the trailing-window mean.
// On a regression the file is left untouched (the bad run must not
// become the baseline) and a nonzero failure count is returned.
//
// The comparison is host-speed normalized. Absolute throughput on a
// shared machine drifts with ambient load — a whole run can land 25%
// below the history while the code is byte-identical — and a uniform
// slowdown is indistinguishable from that drift anyway. What a code
// regression produces that load cannot is a differential signature:
// one series collapsing while its siblings hold. So the gate first
// computes each row's ratio to its own trailing-window mean, takes the
// median ratio across the run as the host-speed factor, and compares
// each row's ratio against that factor. On a quiet dedicated host the
// factor sits at ~1 and the gate degenerates to the plain
// trailing-mean comparison. Runs with fewer than three gated series
// skip the normalization — a median of one or two rows would just
// erase the signal it is meant to expose.
//
// A below-floor row alone is still not a failure: scheduler noise is
// heavy-tailed, and on a loaded host a lone cell can land 2x low while
// every neighbour holds. A code regression does not look like that —
// it reproduces across the thread counts (and records) of the affected
// workload. So a row fails the gate only when at least one other row
// of the same (workload, fs) group is also below floor; a lone
// below-floor row is reported as a warning and recorded, and the next
// run's comparison window absorbs it. The cost of the rule is that a
// regression confined to a workload measured as a single cell can only
// warn — every workload this repo gates is measured at several thread
// counts in two experiment records, so nothing currently relies on
// that edge.
func checkTrajectory(path string, window int, tolerance float64, recs []experiments.RunRecord) int {
	var tf TrajectoryFile
	if err := readJSON(path, &tf); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			fatal("reading trajectory: %v", err)
		}
		tf.Comment = "Per-PR performance trajectory maintained by `benchcheck -record`: one row per " +
			"(workload, fs, threads) cell per run, keyed by config hash. Appends fail when a row's " +
			"throughput, normalized by the run's median ratio to history (host-speed drift), drops " +
			"more than the tolerance below the trailing-window mean of the same series."
	}

	// Series index over the existing history, oldest first.
	series := make(map[string][]TrajectoryRow)
	for _, r := range tf.Rows {
		series[r.key()] = append(series[r.key()], r)
	}

	// First pass: resolve each new row's trailing-window mean (0 when
	// its series has no history yet) and collect the run-wide ratios.
	type pending struct {
		row  TrajectoryRow
		mean float64
		n    int
	}
	var pend []pending
	var ratios []float64
	for _, rec := range recs {
		for _, c := range rec.Cells {
			row := cellRow(rec, c)
			prior := series[row.key()]
			if len(prior) > window {
				prior = prior[len(prior)-window:]
			}
			p := pending{row: row, n: len(prior)}
			if len(prior) > 0 {
				var sum float64
				for _, pr := range prior {
					sum += pr.OpsPerSec
				}
				p.mean = sum / float64(len(prior))
				ratios = append(ratios, row.OpsPerSec/p.mean)
			}
			pend = append(pend, p)
			series[row.key()] = append(series[row.key()], row)
		}
	}
	scale := 1.0
	if len(ratios) >= 3 {
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2]
		fmt.Printf("trajectory: host-speed factor %.2f (median ratio to history across %d series)\n",
			scale, len(ratios))
	}

	// Second pass: find the rows below the normalized floor and count
	// them per (workload, fs) group for the corroboration rule.
	floor := scale * (1 - tolerance)
	below := make([]bool, len(pend))
	belowPerGroup := make(map[string]int)
	for i, p := range pend {
		if p.mean > 0 && p.row.OpsPerSec/p.mean < floor {
			below[i] = true
			belowPerGroup[p.row.Workload+"|"+p.row.FS]++
		}
	}

	// Third pass: report, failing only corroborated regressions.
	failures := 0
	var fresh []TrajectoryRow
	for i, p := range pend {
		row := p.row
		if p.mean > 0 {
			ratio := row.OpsPerSec / p.mean
			if below[i] {
				line := fmt.Sprintf(
					"trajectory %s/%s %dT: %.0f ops/sec is %.1f%% below the trailing-%d mean %.0f after the %.2f host-speed factor (ratio %.2f, floor %.2f)",
					row.Workload, row.FS, row.Threads, row.OpsPerSec,
					100*(1-ratio/scale), p.n, p.mean, scale, ratio, floor)
				if belowPerGroup[row.Workload+"|"+row.FS] >= 2 {
					failures++
					fmt.Fprintln(os.Stderr, "FAIL "+line)
					continue
				}
				fmt.Println("warn " + line + " — lone cell, recording as noise")
			} else {
				fmt.Printf("ok   trajectory %s/%s %dT: %.0f ops/sec vs trailing-%d mean %.0f (ratio %.2f)\n",
					row.Workload, row.FS, row.Threads, row.OpsPerSec, p.n, p.mean, ratio)
			}
		} else {
			fmt.Printf("new  trajectory %s/%s %dT (config %s): %.0f ops/sec, no history yet\n",
				row.Workload, row.FS, row.Threads, row.ConfigHash, row.OpsPerSec)
		}
		fresh = append(fresh, row)
	}
	if failures > 0 {
		return failures
	}

	tf.Rows = append(tf.Rows, fresh...)
	data, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		fatal("encoding trajectory: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal("writing trajectory: %v", err)
	}
	fmt.Printf("trajectory: %s now holds %d rows (+%d)\n", path, len(tf.Rows), len(fresh))
	return 0
}
