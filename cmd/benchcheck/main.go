// Command benchcheck gates CI on persistence-cost regressions. It reads
// one or more machine-readable run records produced by arckbench -json
// and compares selected per-op counters (pmem flushes, fences, ntstores,
// syscalls) against a checked-in bounds file, exiting nonzero if any
// measured cell exceeds a max bound or undercuts a min bound. Min bounds
// exist for counters whose value is the optimization — e.g. the grant
// leases' syscalls_avoided, which dropping to zero would mean the lease
// fast path silently stopped firing.
//
// Usage:
//
//	benchcheck -bounds bench_bounds.json record.json [record2.json ...]
//	benchcheck -bounds bench_bounds.json -record BENCH_trajectory.json record.json [...]
//
// With -record, benchcheck additionally maintains the checked-in
// performance trajectory: each record's cells are compared against the
// trailing-window mean of their (workload, fs, threads, config_hash)
// series — failing on a throughput drop beyond -tolerance, after
// normalizing out run-wide host-speed drift (see checkTrajectory) —
// and then appended to the trajectory file, stamped with the record's
// git SHA and timestamp.
//
// Per-op counts are deterministic for a given workload and persist
// schedule — unlike throughput they do not depend on host speed — so the
// bounds can be tight and the job can run on a tiny op count. A bound
// that matches no cell in any record is an error too: it means the
// workload or system was renamed and the bound went stale.
//
// The two gates want different run sizes: bounds are calibrated at a
// small op count (per-op costs for create-heavy workloads grow with
// directory scale), while trajectory throughput samples need larger
// cells to beat scheduler noise. An empty -bounds value skips the
// bounds phase so a trajectory-only invocation can consume records at
// its own config.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"arckfs/internal/bench/experiments"
)

// Bound is one row of the bounds file: every recorded cell for the
// given (fs, workload) pair must keep per_op[metric] at or below Max
// and at or above Min. At least one of the two must be set.
type Bound struct {
	FS       string   `json:"fs"`
	Workload string   `json:"workload"`
	Metric   string   `json:"metric"`
	Max      *float64 `json:"max,omitempty"`
	Min      *float64 `json:"min,omitempty"`
	// Note documents where the bound comes from; benchcheck echoes it
	// on failure so the log explains what regressed.
	Note string `json:"note,omitempty"`
}

// BoundsFile is the checked-in document.
type BoundsFile struct {
	Comment string  `json:"comment,omitempty"`
	Bounds  []Bound `json:"bounds"`
}

func main() {
	boundsPath := flag.String("bounds", "bench_bounds.json", "bounds file ('' skips the bounds phase)")
	record := flag.String("record", "", "trajectory file to gate against and append to (e.g. BENCH_trajectory.json)")
	window := flag.Int("window", 5, "trailing rows per series the trajectory gate averages over")
	tolerance := flag.Float64("tolerance", 0.10, "largest tolerated relative throughput drop vs the trailing-window mean")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck -bounds bench_bounds.json [-record BENCH_trajectory.json] record.json [...]")
		os.Exit(2)
	}

	var bf BoundsFile
	if *boundsPath != "" {
		if err := readJSON(*boundsPath, &bf); err != nil {
			fatal("reading bounds: %v", err)
		}
		if len(bf.Bounds) == 0 {
			fatal("%s defines no bounds", *boundsPath)
		}
	}

	var cells []experiments.Cell
	var recs []experiments.RunRecord
	for _, path := range flag.Args() {
		var rec experiments.RunRecord
		if err := readJSON(path, &rec); err != nil {
			fatal("reading record: %v", err)
		}
		if rec.Config.Persist != "" && rec.Config.Persist != "batched" {
			fatal("%s was recorded with -persist %s; bounds apply to the default batched schedule",
				path, rec.Config.Persist)
		}
		cells = append(cells, rec.Cells...)
		recs = append(recs, rec)
	}

	failures := 0
	for _, b := range bf.Bounds {
		if b.Max == nil && b.Min == nil {
			fatal("bound %s/%s %s sets neither max nor min", b.Workload, b.FS, b.Metric)
		}
		fail := func(c experiments.Cell, v float64, rel string, limit float64) {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s/%s %s = %.3f per op (%s, %d threads) %s bound %.3f",
				b.Workload, b.FS, b.Metric, v, c.Experiment, c.Threads, rel, limit)
			if b.Note != "" {
				fmt.Fprintf(os.Stderr, " — %s", b.Note)
			}
			fmt.Fprintln(os.Stderr)
		}
		matched := 0
		hi, lo := math.Inf(-1), math.Inf(1)
		for _, c := range cells {
			if c.FS != b.FS || c.Workload != b.Workload {
				continue
			}
			v, ok := c.PerOp[b.Metric]
			if !ok {
				continue
			}
			matched++
			hi, lo = math.Max(hi, v), math.Min(lo, v)
			if b.Max != nil && v > *b.Max {
				fail(c, v, "exceeds", *b.Max)
			}
			if b.Min != nil && v < *b.Min {
				fail(c, v, "undercuts", *b.Min)
			}
		}
		if matched == 0 {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s/%s %s: no cell in any record matches this bound (stale bound or missing experiment)\n",
				b.Workload, b.FS, b.Metric)
			continue
		}
		desc := ""
		if b.Max != nil {
			desc += fmt.Sprintf(" (max %.3f, worst %.3f)", *b.Max, hi)
		}
		if b.Min != nil {
			desc += fmt.Sprintf(" (min %.3f, worst %.3f)", *b.Min, lo)
		}
		fmt.Printf("ok   %s/%s %s across %d cells%s\n",
			b.Workload, b.FS, b.Metric, matched, desc)
	}
	if failures > 0 {
		fatal("%d bound(s) violated", failures)
	}
	if *boundsPath != "" {
		fmt.Printf("benchcheck: %d bounds satisfied across %d cells\n", len(bf.Bounds), len(cells))
	}

	if *record != "" {
		if n := checkTrajectory(*record, *window, *tolerance, recs); n > 0 {
			fatal("%d trajectory regression(s)", n)
		}
	}
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
