// Command arcklint runs the repository's persist-ordering and
// crash-consistency static analyzer suite (internal/analysis) over a set
// of package patterns and reports findings as "file:line: checker:
// message" lines. It exits 1 when any unsuppressed finding remains, 2 on
// usage or load errors.
//
// Usage:
//
//	arcklint [-json] [-checker list] [patterns ...]
//
// Patterns default to ./... and accept plain directories, dir/..., and
// ./... forms. Suppressions are written in source as
// "//arcklint:allow <checker> <reason>"; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"arckfs/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings (including suppressed ones) as a JSON array")
	checkers := flag.String("checker", "", "comma-separated subset of checkers to run (default: all)")
	flag.Parse()

	analyzers, err := analysis.Select(*checkers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arcklint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "arcklint: %v\n", err)
		os.Exit(2)
	}
	root, dirs, err := analysis.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arcklint: %v\n", err)
		os.Exit(2)
	}
	prog, err := analysis.LoadDirs(root, dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arcklint: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.Run(prog, analyzers)
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}

	unsuppressed, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			unsuppressed++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "arcklint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			if !f.Suppressed {
				fmt.Println(f)
			}
		}
	}
	if unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "arcklint: %d finding(s), %d suppressed\n", unsuppressed, suppressed)
		os.Exit(1)
	}
}
