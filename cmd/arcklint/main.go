// Command arcklint runs the repository's persist-ordering,
// crash-consistency, and lock-free-plane static analyzer suite
// (internal/analysis) over a set of package patterns and reports
// findings as "file:line: checker: message" lines. It exits 1 when any
// unsuppressed finding remains, 2 on usage or load errors.
//
// Usage:
//
//	arcklint [-json] [-checker list] [-suppressions [-strict]]
//	         [-baseline file] [-write-baseline file] [patterns ...]
//
// Patterns default to ./... and accept plain directories, dir/..., and
// ./... forms. Suppressions are written in source as
// "//arcklint:allow <checker> <reason>"; the reason is mandatory.
//
// -suppressions switches to audit mode: instead of findings it lists
// every allow directive with its reason, marking directives that no
// longer suppress anything as STALE. Stale directives exit 1 only under
// -strict (CI uses -strict so dead allows cannot linger).
//
// -baseline compares the run against a checked-in snapshot
// (scripts/arcklint_baseline.json): the finding set must match exactly,
// and the analysis must finish within twice the snapshot's recorded
// seconds (floored at 2s to absorb runner noise) — a coarse guard
// against both silent finding drift and superlinear slowdowns in the
// summary engine. -write-baseline regenerates the snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"arckfs/internal/analysis"
)

// baselineFile is the -baseline / -write-baseline snapshot: the exact
// finding set (suppressed included, module-root-relative paths) and the
// analysis wall time that produced it.
type baselineFile struct {
	Findings []analysis.Finding `json:"findings"`
	Seconds  float64            `json:"seconds"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "arcklint: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	jsonOut := flag.Bool("json", false, "emit results (including suppressed findings) as JSON")
	checkers := flag.String("checker", "", "comma-separated subset of checkers to run (default: all)")
	suppressions := flag.Bool("suppressions", false, "audit //arcklint:allow directives instead of reporting findings")
	strict := flag.Bool("strict", false, "with -suppressions: exit 1 if any directive is stale")
	baselinePath := flag.String("baseline", "", "compare findings and runtime against this snapshot file")
	writeBaseline := flag.String("write-baseline", "", "write the findings/runtime snapshot to this file and exit")
	flag.Parse()

	analyzers, err := analysis.Select(*checkers)
	if err != nil {
		fatalf("%v", err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, dirs, err := analysis.ExpandPatterns(cwd, patterns)
	if err != nil {
		fatalf("%v", err)
	}
	start := time.Now()
	prog, err := analysis.LoadDirs(root, dirs)
	if err != nil {
		fatalf("%v", err)
	}

	if *suppressions {
		auditSuppressions(prog, root, *jsonOut, *strict)
		return
	}

	findings := analysis.Run(prog, analyzers)
	elapsed := time.Since(start)
	relativize := func(fs []analysis.Finding) {
		for i := range fs {
			if rel, err := filepath.Rel(root, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				fs[i].Pos.Filename = filepath.ToSlash(rel)
			}
		}
	}
	relativize(findings)

	if *writeBaseline != "" {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		data, err := json.MarshalIndent(baselineFile{Findings: findings, Seconds: elapsed.Seconds()}, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*writeBaseline, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("arcklint: baseline written: %d finding(s) in %.2fs\n", len(findings), elapsed.Seconds())
		return
	}
	if *baselinePath != "" {
		if !checkBaseline(*baselinePath, findings, elapsed) {
			os.Exit(1)
		}
		// Fall through: a baseline match still reports like a normal run.
	}

	unsuppressed, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			unsuppressed++
		}
	}
	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		emitJSON(findings)
	} else {
		for _, f := range findings {
			if !f.Suppressed {
				fmt.Println(f)
			}
		}
	}
	if unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "arcklint: %d finding(s), %d suppressed\n", unsuppressed, suppressed)
		os.Exit(1)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("%v", err)
	}
}

// findingKey identifies a finding for baseline comparison. Position
// column is excluded: gofmt churn should not invalidate the snapshot,
// file/line/checker/message already pin the violation.
func findingKey(f analysis.Finding) string {
	return fmt.Sprintf("%s:%d:%s:%s:suppressed=%v", f.Pos.Filename, f.Pos.Line, f.Checker, f.Message, f.Suppressed)
}

// checkBaseline compares the run against the snapshot and reports any
// drift; it returns false if findings differ or the runtime budget
// (twice the snapshot's seconds, floored at 2s) is exceeded.
func checkBaseline(path string, findings []analysis.Finding, elapsed time.Duration) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("reading baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("parsing baseline %s: %v", path, err)
	}
	want := make(map[string]bool, len(base.Findings))
	for _, f := range base.Findings {
		want[findingKey(f)] = true
	}
	got := make(map[string]bool, len(findings))
	for _, f := range findings {
		got[findingKey(f)] = true
	}
	ok := true
	for _, f := range findings {
		if !want[findingKey(f)] {
			ok = false
			fmt.Fprintf(os.Stderr, "arcklint: finding not in baseline: %s (suppressed=%v)\n", f, f.Suppressed)
		}
	}
	for _, f := range base.Findings {
		if !got[findingKey(f)] {
			ok = false
			fmt.Fprintf(os.Stderr, "arcklint: baseline finding no longer produced: %s (suppressed=%v)\n", f, f.Suppressed)
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "arcklint: finding drift against %s — fix the code or regenerate with -write-baseline\n", path)
	}
	budget := 2 * base.Seconds
	if budget < 2 {
		budget = 2
	}
	if base.Seconds > 0 && elapsed.Seconds() > budget {
		ok = false
		fmt.Fprintf(os.Stderr, "arcklint: runtime budget exceeded: %.2fs > %.2fs (2x baseline %.2fs)\n",
			elapsed.Seconds(), budget, base.Seconds)
	}
	return ok
}

// auditSuppressions implements -suppressions: list every allow
// directive, flag stale ones, and surface malformed directives.
func auditSuppressions(prog *analysis.Program, root string, jsonOut, strict bool) {
	entries, findings := analysis.AuditSuppressions(prog)
	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return name
	}
	stale := 0
	for i := range entries {
		entries[i].Pos.Filename = rel(entries[i].Pos.Filename)
		if entries[i].Stale {
			stale++
		}
	}
	malformed := 0
	for _, f := range findings {
		if f.Checker == "arcklint" {
			malformed++
			fmt.Fprintf(os.Stderr, "arcklint: %s:%d: %s\n", rel(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	if jsonOut {
		if entries == nil {
			entries = []analysis.SuppressionEntry{}
		}
		emitJSON(entries)
	} else {
		for _, e := range entries {
			mark := ""
			if e.Stale {
				mark = " [STALE]"
			}
			fmt.Printf("%s:%d: %s: %s%s\n", e.Pos.Filename, e.Pos.Line, e.Checker, e.Reason, mark)
		}
		fmt.Printf("arcklint: %d suppression(s), %d stale\n", len(entries), stale)
	}
	if malformed > 0 || (strict && stale > 0) {
		os.Exit(1)
	}
}
