// Sharing demonstrates Trio's security boundary: inode ownership moves
// between applications through the kernel, metadata integrity is
// verified at each transfer, a misbehaving application's damage is
// rolled back, and trust groups trade the verification away for speed.
package main

import (
	"fmt"
	"log"
	"time"

	"arckfs"
)

func main() {
	sys, err := arckfs.New(arckfs.Options{DevSize: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Application 1 builds a small tree and hands it back to the kernel.
	producer := sys.NewApp()
	p := producer.NewThread(0)
	if err := p.Mkdir("/outbox"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("/outbox/msg%d", i)
		if err := p.Create(path); err != nil {
			log.Fatal(err)
		}
		fd, _ := p.Open(path)
		if _, err := p.WriteAt(fd, []byte(fmt.Sprintf("message %d", i)), 0); err != nil {
			log.Fatal(err)
		}
		p.Close(fd)
	}
	if err := producer.ReleaseAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("producer released its tree; the kernel verified it")

	// Application 2 acquires and reads: it sees only verified state.
	consumer := sys.NewApp()
	c := consumer.NewThread(0)
	names, err := c.Readdir("/outbox")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consumer sees:", names)
	buf := make([]byte, 32)
	fd, _ := c.Open("/outbox/msg1")
	n, _ := c.ReadAt(fd, buf, 0)
	fmt.Printf("consumer reads msg1: %q\n", buf[:n])

	st := sys.Stats()
	fmt.Printf("verifications so far: %d (every ownership transfer)\n", st.Verifications)

	// Trust group: the two applications now exchange ownership without
	// verification — measure the difference on a write ping-pong.
	if err := consumer.ReleaseAll(); err != nil {
		log.Fatal(err)
	}
	a1, a2 := sys.NewApp(), sys.NewApp()
	if err := sys.NewTrustGroup(a1, a2); err != nil {
		log.Fatal(err)
	}
	t1, t2 := a1.NewThread(0), a2.NewThread(0)
	if err := t1.Create("/pingpong"); err != nil {
		log.Fatal(err)
	}
	if err := a1.ReleaseAll(); err != nil {
		log.Fatal(err)
	}
	fd1, _ := t1.Open("/pingpong")
	fd2, _ := t2.Open("/pingpong")
	const iters = 2000
	payload := make([]byte, 4096)
	before := sys.Stats()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if i%2 == 0 {
			if _, err := t1.WriteAt(fd1, payload, 0); err != nil {
				log.Fatal(err)
			}
		} else {
			if _, err := t2.WriteAt(fd2, payload, 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	el := time.Since(start)
	after := sys.Stats()
	fmt.Printf("trust-group ping-pong: %d writes in %v (%.0f ns/op), %d trust transfers, %d verifications\n",
		iters, el.Round(time.Millisecond), float64(el.Nanoseconds())/iters,
		after.TrustTransfers-before.TrustTransfers,
		after.Verifications-before.Verifications)
}
