// Crashsim demonstrates the paper's §4.2 bug end to end: a missing
// memory fence lets a directory entry's commit marker persist before the
// entry's body, so a crash leaves a committed-but-garbage dentry. The
// same crash against ArckFS+ (one added fence) is always consistent.
//
// This is the in-process equivalent of the paper's experiment: "we insert
// a flush of the cache line containing the commit marker, followed by a
// sleep immediately after updating the commit marker", then cut power.
package main

import (
	"fmt"
	"log"
	"strings"

	"arckfs/internal/core"
	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

func crashDuringCreate(mode core.Mode) *kernel.Report {
	hooks := &libfs.Hooks{}
	sys, err := core.NewSystem(core.Config{
		Mode: mode, DevSize: 64 << 20, Hooks: hooks,
	})
	if err != nil {
		log.Fatal(err)
	}
	app := sys.NewApp(0, 0)
	w := app.NewThread(0).(*libfs.Thread)

	// A committed baseline so the crash hits a realistic image.
	if err := w.Create("/already-durable"); err != nil {
		log.Fatal(err)
	}
	if err := app.ReleaseAll(); err != nil {
		log.Fatal(err)
	}
	sys.Dev.EnableTracking()

	// Crash at the §4.2 window: the commit marker's flush has been
	// issued, the final fence has not. The adversarial policy persists
	// exactly the lines written twice (the marker's line) and drops the
	// single-write body lines — the write-back order the missing fence
	// permits.
	var img []byte
	hooks.CreateBeforeMarkerFence = func() {
		if img == nil {
			img = sys.Dev.CrashImage(func(_ int64, versions int) int {
				if versions >= 2 {
					return versions
				}
				return 0
			})
		}
	}
	name := "/victim-" + strings.Repeat("x", 120)
	if err := w.Create(name); err != nil {
		log.Fatal(err)
	}

	dev := pmem.Restore(img, nil)
	_, rep, err := kernel.Mount(dev, kernel.Options{}, true)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	fmt.Println("Crashing ArckFS (missing fence, §4.2) during create:")
	rep := crashDuringCreate(core.ArckFS)
	fmt.Printf("  recovery: %s\n", rep)
	if rep.CorruptDentries > 0 {
		fmt.Println("  -> a directory entry with a valid commit marker was only")
		fmt.Println("     partially persisted (torn name detected by its hash)")
	}

	fmt.Println("Crashing ArckFS+ (fence added) at the same instant:")
	rep = crashDuringCreate(core.ArckFSPlus)
	fmt.Printf("  recovery: %s\n", rep)
	if rep.CorruptDentries == 0 {
		fmt.Println("  -> the fence orders body write-backs before the marker:")
		fmt.Println("     the entry is either fully present or absent, never torn")
	}
}
