// Webproxy runs the paper's §5.3 Filebench Webproxy workload — with the
// shared-directory, per-filename-lock framework the ArckFS+ paper
// introduces — against ArckFS, ArckFS+, and the NOVA-like baseline, and
// prints the throughput comparison.
package main

import (
	"fmt"
	"log"

	"arckfs/internal/bench/experiments"
	"arckfs/internal/bench/filebench"
	"arckfs/internal/costmodel"
)

func main() {
	cfg := filebench.Defaults(filebench.Webproxy)
	cfg.Files = 128
	cost := costmodel.Default()

	fmt.Println("Filebench Webproxy, shared fileset, fine-grained per-filename locks")
	fmt.Println("(ops/sec; each op = delete+create+write one file, 5 open/read/close, 1 log append)")
	for _, threads := range []int{1, 4, 16} {
		fmt.Printf("\n%d thread(s):\n", threads)
		for _, name := range []string{"arckfs", "arckfs+", "nova"} {
			fs, err := experiments.MakeFS(name, 256<<20, cost)
			if err != nil {
				log.Fatal(err)
			}
			res, err := filebench.Run(fs, cfg, threads, 2000/threads)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Printf("  %-8s %8.0f ops/sec\n", name, res.OpsPerSec())
		}
	}

	fmt.Println("\nFor the private-directory variant the Trio artifact used instead:")
	cfg.SharedDir = false
	for _, name := range []string{"arckfs+"} {
		fs, err := experiments.MakeFS(name, 256<<20, cost)
		if err != nil {
			log.Fatal(err)
		}
		res, err := filebench.Run(fs, cfg, 4, 500)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8.0f ops/sec @4 threads (private dirs)\n", name, res.OpsPerSec())
	}
}
