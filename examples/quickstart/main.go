// Quickstart: format an ArckFS+ system, create a small tree, write and
// read data, verify-and-release everything, then survive a simulated
// power failure.
package main

import (
	"fmt"
	"log"

	"arckfs"
)

func main() {
	// A 64 MiB simulated persistent-memory device with crash tracking on
	// so we can pull power later.
	sys, err := arckfs.New(arckfs.Options{DevSize: 64 << 20, CrashTracking: true})
	if err != nil {
		log.Fatal(err)
	}
	app := sys.NewApp() // one application = one library file system
	w := app.NewThread(0)

	// All of this runs in userspace: no kernel involvement per operation.
	if err := w.Mkdir("/projects"); err != nil {
		log.Fatal(err)
	}
	if err := w.Create("/projects/notes.txt"); err != nil {
		log.Fatal(err)
	}
	fd, err := w.Open("/projects/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("ArckFS stores this durably, synchronously, without syscalls.")
	if _, err := w.WriteAt(fd, msg, 0); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := w.ReadAt(fd, got, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %s\n", got)

	names, _ := w.Readdir("/projects")
	fmt.Println("directory listing:", names)

	// Returning inodes to the kernel triggers integrity verification —
	// the Trio architecture's security boundary.
	if err := app.ReleaseAll(); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("kernel stats: %d acquires, %d verifications, %d failures\n",
		st.Acquires, st.Verifications, st.VerifyFailures)

	// Pull the power: only what was flushed AND fenced survives. ArckFS+
	// persists synchronously, so everything we wrote is there.
	img := sys.CrashImage(arckfs.CrashDropAll)
	sys2, rep, err := arckfs.Recover(img, arckfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovery report:", rep)
	w2 := sys2.NewApp().NewThread(0)
	fd2, err := w2.Open("/projects/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	got2 := make([]byte, len(msg))
	if _, err := w2.ReadAt(fd2, got2, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+recovery: %s\n", got2)
}
