#!/bin/sh
# Fails if any internal/ package lacks a package-level doc comment, so
# `go doc ./internal/...` stays usable as the architecture's reference
# (see ARCHITECTURE.md). A package passes when at least one of its
# non-test Go files opens its package clause with a "// Package ..."
# comment. testdata trees are not packages and are skipped.
set -eu
cd "$(dirname "$0")/.."
status=0
for dir in $(find internal -type d -not -path '*/testdata*' | sort); do
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    found=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q '^// Package ' "$f"; then
            found=1
            break
        fi
    done
    # Directories holding only test files are not importable packages.
    has_src=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        has_src=1
        break
    done
    if [ "$has_src" = 1 ] && [ "$found" = 0 ]; then
        echo "missing package doc comment: $dir" >&2
        status=1
    fi
done
if [ "$status" = 0 ]; then
    echo "all internal packages have package doc comments"
fi
exit $status
