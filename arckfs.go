// Package arckfs is a from-scratch Go reproduction of the Trio
// userspace-NVM-file-system architecture, the ArckFS file system built on
// it (Zhou et al., SOSP 2023), and the ArckFS+ enhancements of "Analyzing
// and Enhancing ArckFS" (Jeon et al., SOSP 2025).
//
// A System owns a simulated persistent-memory device, the in-kernel
// access controller, and the trusted integrity verifier. Applications
// attach through Apps (per-application library file systems) and perform
// all data and metadata operations in userspace; the kernel is involved
// only when inode ownership moves between applications, which is when
// metadata integrity is verified.
//
// Two presets reproduce the paper:
//
//   - ModeArckFS is the Trio artifact as shipped, with all six bugs of
//     the paper's Table 1 present;
//   - ModeArckFSPlus applies every patch (the default).
//
// The simulated device models cache-line flushes, persist barriers, and
// power-failure crash states, so the paper's crash-consistency findings
// are reproducible in process; see CrashImage and Recover.
package arckfs

import (
	"time"

	"arckfs/internal/core"
	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
	"arckfs/internal/telemetry/span"
)

// Mode selects the system preset.
type Mode = core.Mode

const (
	// ModeArckFSPlus is the patched system of the SOSP 2025 paper.
	ModeArckFSPlus = core.ArckFSPlus
	// ModeArckFS is the Trio artifact as shipped (all Table-1 bugs).
	ModeArckFS = core.ArckFS
)

// Re-exported operation types and error values, so callers need only
// this package.
type (
	// Stat describes an inode.
	Stat = fsapi.Stat
	// FD is a per-thread file descriptor.
	FD = fsapi.FD
	// Thread is a per-worker handle; see NewThread.
	Thread = fsapi.Thread
	// Report summarizes what recovery found and repaired.
	Report = kernel.Report
)

// Error values returned by file system operations.
var (
	ErrNotExist     = fsapi.ErrNotExist
	ErrExist        = fsapi.ErrExist
	ErrNotDir       = fsapi.ErrNotDir
	ErrIsDir        = fsapi.ErrIsDir
	ErrNotEmpty     = fsapi.ErrNotEmpty
	ErrPerm         = fsapi.ErrPerm
	ErrNoSpace      = fsapi.ErrNoSpace
	ErrInval        = fsapi.ErrInval
	ErrBusy         = fsapi.ErrBusy
	ErrBusError     = fsapi.ErrBusError
	ErrSegfault     = fsapi.ErrSegfault
	ErrVerification = fsapi.ErrVerification
)

// IsVerificationError reports whether err is an integrity-verifier
// rejection (the kernel applied its corruption policy).
func IsVerificationError(err error) bool { return kernel.IsVerificationError(err) }

// Options configures a System.
type Options struct {
	// Mode selects ArckFS or ArckFS+ (default ArckFS+).
	Mode Mode
	// DevSize is the simulated persistent-memory capacity in bytes
	// (default 256 MiB).
	DevSize int64
	// InodeCap caps the inode table (default 65536).
	InodeCap uint64
	// RealisticCosts charges calibrated latencies for system calls,
	// cache-line flushes, fences, and verification, approximating the
	// relative costs on the paper's Optane testbed. Off, everything is
	// as fast as DRAM allows (the right setting for unit tests).
	RealisticCosts bool
	// CrashTracking records per-cache-line persistence state so
	// CrashImage can materialize power-failure states. It costs memory
	// and time; enable it only for crash experiments.
	CrashTracking bool
	// LeaseTTL bounds how long an application can hold an inode another
	// application waits for.
	LeaseTTL time.Duration
	// SpanSampling enables arcktrace causal span tracing: 1 traces every
	// operation, N traces one in N (rounded up to a power of two). 0 (the
	// default) leaves the tracer attached but disabled; Tracer() can flip
	// it on later.
	SpanSampling int
}

// System is a formatted, mounted instance of the Trio architecture.
type System struct {
	sys *core.System
}

// New formats a fresh system.
func New(opts Options) (*System, error) {
	var cost *costmodel.Model
	if opts.RealisticCosts {
		cost = costmodel.Default()
	}
	sys, err := core.NewSystem(core.Config{
		Mode:         opts.Mode,
		DevSize:      opts.DevSize,
		InodeCap:     opts.InodeCap,
		Cost:         cost,
		Tracking:     opts.CrashTracking,
		LeaseTTL:     opts.LeaseTTL,
		SpanSampling: opts.SpanSampling,
	})
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// Recover mounts a device image (typically from CrashImage), running
// crash recovery and reporting what it repaired.
func Recover(img []byte, opts Options) (*System, *Report, error) {
	var cost *costmodel.Model
	if opts.RealisticCosts {
		cost = costmodel.Default()
	}
	sys, rep, err := core.Recover(img, core.Config{
		Mode:         opts.Mode,
		Cost:         cost,
		Tracking:     opts.CrashTracking,
		LeaseTTL:     opts.LeaseTTL,
		SpanSampling: opts.SpanSampling,
	})
	if err != nil {
		return nil, nil, err
	}
	return &System{sys: sys}, rep, nil
}

// Fsck analyzes a device image without modifying it.
func Fsck(img []byte) (*Report, error) {
	dev := pmem.Restore(img, nil)
	return kernel.Fsck(dev, kernel.Options{})
}

// CrashPolicy controls which in-flight writes survive a simulated power
// failure; see the pmem package for semantics.
type CrashPolicy = pmem.CrashPolicy

// Crash policies.
var (
	CrashDropAll    = pmem.CrashDropAll
	CrashPersistAll = pmem.CrashPersistAll
	CrashRandom     = pmem.CrashRandom
)

// CrashImage materializes the durable state a power failure at this
// instant could leave, under policy. Requires CrashTracking.
func (s *System) CrashImage(policy CrashPolicy) []byte {
	s.sys.Ctrl.Trace().Record(telemetry.EvCrashSnapshot, 0, 0, 0, 0)
	return s.sys.Dev.CrashImage(policy)
}

// Image returns a copy of the full volatile device image (a clean
// shutdown).
func (s *System) Image() []byte {
	n := s.sys.Dev.Size()
	img := make([]byte, n)
	s.sys.Dev.Read(0, img)
	return img
}

// Mode returns the preset the system runs.
func (s *System) Mode() Mode { return s.sys.Mode() }

// KernelStats is a snapshot of controller counters.
type KernelStats = kernel.Snapshot

// Stats snapshots the kernel's event counters.
func (s *System) Stats() KernelStats { return s.sys.Ctrl.Stats.Snapshot() }

// ShardStat describes one lock shard of the kernel's sharded control
// plane (shadow-inode shards, page-owner stripes, ACL shards, and the
// app table), with its acquisition and contention counters.
type ShardStat = kernel.ShardStat

// ShardStats returns per-shard lock counters, in a stable order.
func (s *System) ShardStats() []ShardStat { return s.sys.Ctrl.ShardStats() }

// Telemetry returns the system-wide counter set: pmem persistence
// events, kernel crossings, verifier work units, and LibFS recovery
// paths, all by name (see internal/telemetry).
func (s *System) Telemetry() *telemetry.Set { return s.sys.Telemetry() }

// Trace returns the bounded ring of kernel-crossing events.
func (s *System) Trace() *telemetry.Ring { return s.sys.Ctrl.Trace() }

// Span is one traced operation: app, op kind, duration, and the causal
// child events it collected (flushes, fences, kernel crossings, lease
// hits, shard waits) — see internal/telemetry/span.
type Span = span.Span

// SpanTracer samples operations into per-thread span rings.
type SpanTracer = span.Tracer

// FlightRecord is a dump of recently retained spans, written as a JSON
// artifact when an invariant breach or fsck failure is detected.
type FlightRecord = span.FlightRecord

// AppStat is one application's attribution row: operations, kernel
// crossings, persist traffic, and sampled operation latency.
type AppStat = telemetry.AppStat

// Tracer returns the arcktrace span tracer (always attached; enabled per
// Options.SpanSampling or at runtime via its SetEnabled).
func (s *System) Tracer() *SpanTracer { return s.sys.Tracer() }

// Spans returns the currently retained sampled spans, oldest first.
func (s *System) Spans() []*Span { return s.sys.Tracer().Snapshot() }

// SlowestSpans returns up to n retained spans by descending duration.
func (s *System) SlowestSpans(n int) []*Span { return s.sys.Tracer().Slowest(n) }

// AppStats returns the per-application attribution snapshot, sorted by
// app ID.
func (s *System) AppStats() []AppStat { return s.sys.AppStats() }

// AppUsage is one tenant's live quota/usage snapshot: outstanding page
// and inode grants against the installed limits.
type AppUsage = kernel.AppUsage

// Quota bounds one tenant's consumption of the shared substrate (see
// kernel.Quota; zero fields mean unlimited).
type Quota = kernel.Quota

// Usage snapshots every registered application's outstanding grants and
// quota, sorted by app ID (arckshell's `tenants` table).
func (s *System) Usage() []AppUsage { return s.sys.Ctrl.Usage() }

// SetQuota installs (or, with a zero Quota, clears) an application's
// grant and crossing quotas at runtime.
func (s *System) SetQuota(a *App, q Quota) error {
	return s.sys.Ctrl.SetQuota(a.fs.App(), q)
}

// DeviceStats returns persistence-event counters (stores, flushes,
// fences) of the simulated device.
func (s *System) DeviceStats() (stores, bytes, flushes, fences int64) {
	st := &s.sys.Dev.Stats
	return st.Stores.Load(), st.Bytes.Load(), st.Flushes.Load(), st.Fences.Load()
}

// App is one application's library file system.
type App struct {
	fs *libfs.FS
}

// NewApp registers an application and attaches its LibFS.
func (s *System) NewApp() *App {
	return &App{fs: s.sys.NewApp(0, 0)}
}

// NewTrustGroup places the applications in one trust group: inode
// ownership moves among them without verification (§5.4 of the paper).
func (s *System) NewTrustGroup(apps ...*App) error {
	ids := make([]int64, len(apps))
	for i, a := range apps {
		ids[i] = a.fs.App()
	}
	_, err := s.sys.Ctrl.NewTrustGroup(ids...)
	return err
}

// NewThread creates a worker handle pinned to a virtual CPU. A Thread
// must not be shared between goroutines; threads of one App run in
// parallel.
func (a *App) NewThread(cpu int) Thread { return a.fs.NewThread(cpu) }

// Name identifies the file system variant ("arckfs" or "arckfs+").
func (a *App) Name() string { return a.fs.Name() }

// ReleaseAll returns every inode the application holds to the kernel,
// committing newly created inodes in rule-compatible order and running
// integrity verification on everything.
func (a *App) ReleaseAll() error { return a.fs.ReleaseAll() }

// Release returns one inode (by path) to the kernel, verifying it.
func (a *App) Release(path string) error {
	t := a.fs.NewThread(0).(*libfs.Thread)
	defer t.Detach()
	st, err := t.Stat(path)
	if err != nil {
		return err
	}
	return a.fs.ReleaseInode(st.Ino)
}

// Commit verifies path's inode (and any uncommitted ancestors) without
// giving up ownership — Trio's commit operation.
func (a *App) Commit(path string) error {
	t := a.fs.NewThread(0).(*libfs.Thread)
	defer t.Detach()
	return a.fs.CommitInode(t, path)
}

// CreateBatch is an example of Trio's per-application customization: it
// creates every name in names as an empty file under dir, amortizing the
// persistence barriers across the whole batch (two fences total instead
// of two per file) while keeping each entry individually crash-atomic.
// It returns how many files were created before any error.
func (a *App) CreateBatch(t Thread, dir string, names []string) (int, error) {
	lt, ok := t.(*libfs.Thread)
	if !ok {
		return 0, ErrInval
	}
	return lt.CreateBatch(dir, names)
}

var _ fsapi.FS = (*libfs.FS)(nil)
