// Benchmarks regenerating the paper's evaluation as Go testing.B
// targets. Each benchmark corresponds to a table or figure of the
// ArckFS+ paper (see DESIGN.md's per-experiment index); cmd/arckbench
// produces the full rendered tables.
//
//	go test -bench=. -benchmem
package arckfs_test

import (
	"fmt"
	"testing"

	"arckfs/internal/bench/experiments"
	"arckfs/internal/bench/filebench"
	"arckfs/internal/bench/fiolike"
	"arckfs/internal/bench/fxmark"
	"arckfs/internal/bench/sharing"
	"arckfs/internal/core"
	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/kv"
	"arckfs/internal/libfs"
)

const benchDev = 256 << 20

func benchFS(b *testing.B, name string) fsapi.FS {
	b.Helper()
	fs, err := experiments.MakeFS(name, benchDev, costmodel.Default())
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

// --- Figure 3: single-thread metadata operations ---------------------------

func benchFxmarkSingle(b *testing.B, sysName, workload string) {
	fs := benchFS(b, sysName)
	w, ok := fxmark.ByName(workload)
	if !ok {
		b.Fatalf("no workload %s", workload)
	}
	cfg := fxmark.Defaults()
	if err := w.Setup(fs, 1, cfg); err != nil {
		b.Fatal(err)
	}
	op, err := w.Worker(fs, 0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3Open(b *testing.B) {
	for _, sys := range []string{"arckfs", "arckfs+", "nova", "pmfs", "kucofs"} {
		b.Run(sys, func(b *testing.B) { benchFxmarkSingle(b, sys, "MRPL") })
	}
}

func BenchmarkFigure3Create(b *testing.B) {
	for _, sys := range []string{"arckfs", "arckfs+", "nova", "pmfs", "kucofs"} {
		b.Run(sys, func(b *testing.B) { benchFxmarkSingle(b, sys, "MWCL") })
	}
}

func BenchmarkFigure3Delete(b *testing.B) {
	for _, sys := range []string{"arckfs", "arckfs+", "nova", "pmfs", "kucofs"} {
		b.Run(sys, func(b *testing.B) { benchFxmarkSingle(b, sys, "MWUL") })
	}
}

// --- §5.1 data: single-thread 4K read/write --------------------------------

func BenchmarkDataRead4K(b *testing.B) {
	for _, sys := range []string{"arckfs", "arckfs+", "nova"} {
		b.Run(sys, func(b *testing.B) {
			benchFxmarkSingle(b, sys, "DRBL")
			b.SetBytes(4096)
		})
	}
}

func BenchmarkDataWrite4K(b *testing.B) {
	for _, sys := range []string{"arckfs", "arckfs+", "nova"} {
		b.Run(sys, func(b *testing.B) {
			benchFxmarkSingle(b, sys, "DWOL")
			b.SetBytes(4096)
		})
	}
}

// --- Figure 4 / Table 2: FxMark metadata scalability ------------------------

// BenchmarkFxmark runs every Table-3 workload for ArckFS and ArckFS+ at
// a small thread sweep (full sweep: cmd/arckbench -exp figure4).
func BenchmarkFxmark(b *testing.B) {
	for _, w := range fxmark.Metadata {
		for _, sys := range []string{"arckfs", "arckfs+"} {
			for _, th := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/t%d", w.Name, sys, th), func(b *testing.B) {
					fs := benchFS(b, sys)
					res, err := fxmark.RunWorkload(fs, w, th, b.N/th+1, fxmark.Defaults())
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.OpsPerSec(), "ops/s")
				})
			}
		}
	}
}

// --- §5.2 fio ---------------------------------------------------------------

func BenchmarkFio(b *testing.B) {
	for _, job := range fiolike.StandardJobs(4 << 20) {
		for _, sys := range []string{"arckfs+", "nova"} {
			b.Run(job.Name+"/"+sys, func(b *testing.B) {
				fs := benchFS(b, sys)
				res, err := fiolike.Run(fs, job, 2, b.N/2+1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.GiBPerSec(), "GiB/s")
			})
		}
	}
}

// --- §5.3 Filebench ----------------------------------------------------------

func BenchmarkFilebench(b *testing.B) {
	for _, p := range []filebench.Personality{filebench.Webproxy, filebench.Varmail} {
		for _, sys := range []string{"arckfs", "arckfs+", "nova"} {
			for _, th := range []int{1, 16} {
				b.Run(fmt.Sprintf("%s/%s/t%d", p, sys, th), func(b *testing.B) {
					fs := benchFS(b, sys)
					cfg := filebench.Defaults(p)
					cfg.Files = 128
					n := b.N/th + 1
					res, err := filebench.Run(fs, cfg, th, n)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.OpsPerSec(), "ops/s")
				})
			}
		}
	}
}

// --- §5.3 LevelDB ------------------------------------------------------------

func BenchmarkLevelDB(b *testing.B) {
	val := make([]byte, 100)
	for _, sys := range []string{"arckfs", "arckfs+", "nova"} {
		b.Run("fillseq/"+sys, func(b *testing.B) {
			fs := benchFS(b, sys)
			db, err := kv.Open(fs, kv.Options{MemtableBytes: 256 << 10})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put([]byte(fmt.Sprintf("%016d", i)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("readrandom/"+sys, func(b *testing.B) {
			fs := benchFS(b, sys)
			db, err := kv.Open(fs, kv.Options{MemtableBytes: 256 << 10})
			if err != nil {
				b.Fatal(err)
			}
			const n = 5000
			for i := 0; i < n; i++ {
				db.Put([]byte(fmt.Sprintf("%016d", i)), val)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Get([]byte(fmt.Sprintf("%016d", (i*40503)%n))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 4: sharing cost ----------------------------------------------------

func BenchmarkTable4SharedWrite(b *testing.B) {
	for _, size := range []uint64{2 << 20, 64 << 20} {
		for _, trust := range []bool{false, true} {
			name := fmt.Sprintf("%dMB/trust=%v", size>>20, trust)
			b.Run(name, func(b *testing.B) {
				sys, err := core.NewSystem(core.Config{DevSize: benchDev, Cost: costmodel.Default()})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				res, err := sharing.ArckWrite(sys, size, trust, b.N)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.GiBps, "GiB/s")
			})
		}
	}
	b.Run("nova/64MB", func(b *testing.B) {
		res, err := sharing.NovaWrite(costmodel.Default(), benchDev, 64<<20, b.N)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GiBps, "GiB/s")
	})
}

func BenchmarkTable4SharedCreate(b *testing.B) {
	for _, batch := range []int{10, 100} {
		for _, trust := range []bool{false, true} {
			b.Run(fmt.Sprintf("batch%d/trust=%v", batch, trust), func(b *testing.B) {
				// Inode capacity sized for the largest b.N the fast
				// trust-group variant reaches within the bench budget.
				sys, err := core.NewSystem(core.Config{DevSize: 512 << 20, InodeCap: 1 << 19, Cost: costmodel.Default()})
				if err != nil {
					b.Fatal(err)
				}
				turns := b.N/batch + 1
				b.ResetTimer()
				res, err := sharing.ArckCreate(sys, batch, turns, trust)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MicrosPerOp, "µs/create")
			})
		}
	}
}

// --- Customization ablation: batched creation (Trio's per-app freedom) --------

// BenchmarkCustomizationCreateBatch compares the batched-create
// customization against individual creates on ArckFS+ — the kind of
// application-specific win Trio's architecture exists to allow.
func BenchmarkCustomizationCreateBatch(b *testing.B) {
	const batch = 64
	mkApp := func(b *testing.B) *libfs.FS {
		sys, err := core.NewSystem(core.Config{DevSize: 512 << 20, InodeCap: 1 << 19, Cost: costmodel.Default()})
		if err != nil {
			b.Fatal(err)
		}
		return sys.NewApp(0, 0)
	}
	b.Run("individual", func(b *testing.B) {
		w := mkApp(b).NewThread(0)
		w.Mkdir("/d")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Create(fmt.Sprintf("/d/f%d", i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		w := mkApp(b).NewThread(0).(*libfs.Thread)
		w.Mkdir("/d")
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			names := make([]string, batch)
			for k := range names {
				names[k] = fmt.Sprintf("f%d-%d", i, k)
			}
			if _, err := w.CreateBatch("/d", names); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table 1 ablation: the cost of each individual patch ----------------------

// BenchmarkTable1PatchCost measures create and open throughput with the
// patches present and absent, isolating the overhead column of Table 1:
// create carries the §4.2 fence and §4.4 critical-section extension;
// open carries the §4.5 RCU read side.
func BenchmarkTable1PatchCost(b *testing.B) {
	cases := []struct {
		name string
		bugs string
	}{
		{"all-patches(arckfs+)", "arckfs+"},
		{"no-patches(arckfs)", "arckfs"},
	}
	for _, c := range cases {
		b.Run("create/"+c.name, func(b *testing.B) { benchFxmarkSingle(b, c.bugs, "MWCL") })
		b.Run("open/"+c.name, func(b *testing.B) { benchFxmarkSingle(b, c.bugs, "MRPL") })
	}
}

// BenchmarkTable1ReleaseCost measures the §4.3 patch's "inode release
// overhead": a voluntary release quiesces the inode's locks (and, for
// directories, every hash bucket) before unmapping, where ArckFS just
// unmaps. Each iteration is one release + re-acquire round trip of a
// 64-entry directory.
func BenchmarkTable1ReleaseCost(b *testing.B) {
	for _, mode := range []core.Mode{core.ArckFSPlus, core.ArckFS} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			sys, err := core.NewSystem(core.Config{Mode: mode, DevSize: benchDev, Cost: costmodel.Default()})
			if err != nil {
				b.Fatal(err)
			}
			app := sys.NewApp(0, 0)
			w := app.NewThread(0).(*libfs.Thread)
			if err := w.Mkdir("/d"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				if err := w.Create(fmt.Sprintf("/d/f%02d", i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := app.ReleaseAll(); err != nil {
				b.Fatal(err)
			}
			st, err := w.Stat("/d")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Mutate the directory (forces a re-acquire), then
				// voluntarily release it.
				p := fmt.Sprintf("/d/tmp%d", i%512)
				if err := w.Create(p); err != nil {
					b.Fatal(err)
				}
				if err := w.Unlink(p); err != nil {
					b.Fatal(err)
				}
				if err := app.ReleaseInode(st.Ino); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
