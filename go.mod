module arckfs

go 1.23
